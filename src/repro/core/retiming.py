"""Retiming of convolutional connections (paper Sections 2.3 and 3.2).

Retiming ``R`` maps each vertex to the number of its iterations re-allocated
into the prologue (Definition 3.1). After retiming, the dependency carried
by edge ``(i, j)`` crosses ``delta(i, j) = R(i) - R(j)`` iteration
boundaries; the data produced by instance ``l`` of ``V_i`` is consumed by
instance ``l + delta`` of ``V_j``.

Given the compacted kernel (period ``p``, per-op offsets) and the transfer
time ``c_ij`` of the intermediate result under a placement, the *required*
relative retiming is the smallest ``delta`` with::

    finish(i) + c_ij <= delta * p + start(j)

Because ``finish(i) <= p`` and ``c_ij <= p`` (Theorem 3.1's premise), the
requirement never exceeds 2 -- Theorem 3.1's bound. Evaluating it under the
cache and eDRAM placements yields the six cases of Figure 4 and the profit
``ΔR(m) = delta_edram - delta_cache`` the dynamic program maximizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.core.schedule import KernelSchedule
from repro.graph.taskgraph import TaskGraph
from repro.pim.config import PimConfig
from repro.pim.memory import Placement


class RetimingError(ValueError):
    """Raised on illegal retimings or broken Theorem 3.1 premises."""


def required_retiming(finish: int, start: int, transfer: int, period: int) -> int:
    """Minimum relative retiming for one dependency.

    Args:
        finish: producer finish offset ``f_i`` within the kernel.
        start: consumer start offset ``s_j`` within the kernel.
        transfer: intermediate-result transfer time ``c_ij``.
        period: kernel period ``p``.

    Returns:
        ``delta = max(0, ceil((f_i + c_ij - s_j) / p))``.
    """
    if period <= 0:
        raise RetimingError("period must be positive")
    if transfer < 0:
        raise RetimingError("transfer time must be >= 0")
    gap = finish + transfer - start
    if gap <= 0:
        return 0
    return math.ceil(gap / period)


@dataclass(frozen=True)
class EdgeTiming:
    """Per-edge retiming analysis under both placements.

    Attributes:
        key: ``(producer, consumer)``.
        transfer_cache / transfer_edram: effective ``c_ij`` under each
            placement, already clamped to ``p`` (Theorem 3.1 premise: an
            access wider than the window spreads across it).
        delta_cache / delta_edram: required relative retiming under each
            placement (each in ``{0, 1, 2}``).
        slots: cache slots ``sp_m`` the result occupies if cached.
        deadline: the DP sort key ``d_{i,j}`` -- the consumer's start offset
            (the latest moment the data is still useful within an iteration).
    """

    key: Tuple[int, int]
    transfer_cache: int
    transfer_edram: int
    delta_cache: int
    delta_edram: int
    slots: int
    deadline: int

    @property
    def delta_r(self) -> int:
        """``ΔR(m)`` -- retiming-value reduction earned by caching."""
        return self.delta_edram - self.delta_cache

    def delta_for(self, placement: Placement) -> int:
        return (
            self.delta_cache if placement is Placement.CACHE else self.delta_edram
        )

    def transfer_for(self, placement: Placement) -> int:
        return (
            self.transfer_cache
            if placement is Placement.CACHE
            else self.transfer_edram
        )


def analyze_edges(
    graph: TaskGraph, kernel: KernelSchedule, config: PimConfig
) -> Dict[Tuple[int, int], EdgeTiming]:
    """Compute :class:`EdgeTiming` for every intermediate result.

    This is the "analysis of extra data movement" of Section 3.2: it bounds
    how many extra prologue iterations each placement choice costs.
    """
    period = kernel.period
    if period <= 0:
        raise RetimingError("kernel period must be positive")
    timings: Dict[Tuple[int, int], EdgeTiming] = {}
    for edge in graph.edges():
        t_cache = min(period, config.cache_transfer_units(edge.size_bytes))
        t_edram = min(period, config.edram_transfer_units(edge.size_bytes))
        if t_edram < t_cache:
            raise RetimingError(
                f"edge {edge.key}: eDRAM transfer faster than cache "
                "(configuration inverts the memory hierarchy)"
            )
        finish = kernel.finish(edge.producer)
        start = kernel.start(edge.consumer)
        d_cache = required_retiming(finish, start, t_cache, period)
        d_edram = required_retiming(finish, start, t_edram, period)
        if d_cache > 2 or d_edram > 2:
            raise RetimingError(
                f"edge {edge.key}: required retiming exceeds Theorem 3.1 "
                f"bound (cache={d_cache}, eDRAM={d_edram})"
            )
        timings[edge.key] = EdgeTiming(
            key=edge.key,
            transfer_cache=t_cache,
            transfer_edram=t_edram,
            delta_cache=d_cache,
            delta_edram=d_edram,
            slots=config.slots_required(edge.size_bytes),
            deadline=start,
        )
    return timings


@dataclass(frozen=True)
class DeltaRAccounting:
    """Aggregate ΔR mass of a graph, split by fused-dataflow provenance.

    Fused lowering changes *which* intermediate results exist, not how
    any single one is priced: a fused stage's internal IRs vanish from
    the graph (cache-resident by construction, zero allocator pressure)
    while its boundary IRs stay ordinary candidates. This accounting
    makes that shift measurable — the verify battery uses it to assert
    that every surviving candidate still prices normally, and the eval
    bench reports it as the fused-vs-unfused ΔR profile.

    Attributes:
        total_edges: intermediate results analyzed.
        candidate_edges: edges with ``ΔR > 0`` (worth caching at all).
        total_delta_r: ``Σ max(ΔR, 0)`` over every edge.
        fused_stages: vertices standing for more than one original op.
        fused_ops_absorbed: original ops folded away by fusion
            (``Σ (fused_count - 1)``); 0 on an unfused graph.
        fused_boundary_edges: edges touching at least one fused vertex.
        fused_boundary_delta_r: ``Σ max(ΔR, 0)`` over those edges.
    """

    total_edges: int
    candidate_edges: int
    total_delta_r: int
    fused_stages: int
    fused_ops_absorbed: int
    fused_boundary_edges: int
    fused_boundary_delta_r: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "total_edges": self.total_edges,
            "candidate_edges": self.candidate_edges,
            "total_delta_r": self.total_delta_r,
            "fused_stages": self.fused_stages,
            "fused_ops_absorbed": self.fused_ops_absorbed,
            "fused_boundary_edges": self.fused_boundary_edges,
            "fused_boundary_delta_r": self.fused_boundary_delta_r,
        }


def delta_r_accounting(
    graph: TaskGraph, timings: Dict[Tuple[int, int], EdgeTiming]
) -> DeltaRAccounting:
    """Fold per-edge :class:`EdgeTiming` into a :class:`DeltaRAccounting`."""
    fused_ids = {
        op.op_id for op in graph.operations() if op.fused_count > 1
    }
    total_delta = 0
    candidates = 0
    boundary_edges = 0
    boundary_delta = 0
    for key, timing in timings.items():
        gain = max(0, timing.delta_r)
        total_delta += gain
        if gain > 0:
            candidates += 1
        if key[0] in fused_ids or key[1] in fused_ids:
            boundary_edges += 1
            boundary_delta += gain
    return DeltaRAccounting(
        total_edges=len(timings),
        candidate_edges=candidates,
        total_delta_r=total_delta,
        fused_stages=len(fused_ids),
        fused_ops_absorbed=sum(
            op.fused_count - 1 for op in graph.operations()
        ),
        fused_boundary_edges=boundary_edges,
        fused_boundary_delta_r=boundary_delta,
    )


@dataclass
class RetimingSolution:
    """A legal vertex/edge retiming induced by per-edge requirements.

    Attributes:
        vertex_retiming: ``R(i)`` per operation.
        edge_retiming: ``R(i, j)`` per intermediate result, chosen as
            ``R(j) + delta(i, j)`` -- always inside the legal band
            ``[R(j), R(i)]``.
        deltas: the per-edge requirements the solution satisfies.
    """

    vertex_retiming: Dict[int, int]
    edge_retiming: Dict[Tuple[int, int], int]
    deltas: Dict[Tuple[int, int], int]

    @property
    def max_retiming(self) -> int:
        """``R_max`` -- the prologue length in iterations."""
        return max(self.vertex_retiming.values(), default=0)

    def is_legal(self) -> bool:
        """Definition 3.1: ``R(i) >= R(i,j) >= R(j)`` and ``R >= 0``."""
        for (i, j), r_ij in self.edge_retiming.items():
            if not self.vertex_retiming[i] >= r_ij >= self.vertex_retiming[j]:
                return False
        return all(r >= 0 for r in self.vertex_retiming.values())


def solve_retiming(
    graph: TaskGraph, deltas: Mapping[Tuple[int, int], int]
) -> RetimingSolution:
    """Propagate per-edge requirements into the minimal vertex retiming.

    ``R(i) = max over out-edges (R(j) + delta(i, j))`` with ``R = 0`` at
    sinks; computed in reverse topological order, this is the unique
    pointwise-minimal legal retiming, hence it minimizes ``R_max``
    for the given per-edge requirements.
    """
    missing = {e.key for e in graph.edges()} - set(deltas)
    if missing:
        raise RetimingError(f"missing deltas for edges: {sorted(missing)[:5]}")
    retiming: Dict[int, int] = {}
    for op_id in reversed(graph.topological_order()):
        best = 0
        for edge in graph.out_edges(op_id):
            delta = deltas[edge.key]
            if delta < 0:
                raise RetimingError(f"edge {edge.key}: negative delta {delta}")
            best = max(best, retiming[edge.consumer] + delta)
        retiming[op_id] = best
    edge_retiming = {
        edge.key: retiming[edge.consumer] + deltas[edge.key]
        for edge in graph.edges()
    }
    solution = RetimingSolution(
        vertex_retiming=retiming,
        edge_retiming=edge_retiming,
        deltas=dict(deltas),
    )
    if not solution.is_legal():
        raise RetimingError("propagated retiming is illegal (internal error)")
    return solution


def max_retiming_for_placement(
    graph: TaskGraph,
    timings: Mapping[Tuple[int, int], EdgeTiming],
    placement: Mapping[Tuple[int, int], Placement],
) -> int:
    """``R_max`` that a concrete placement of every edge induces."""
    deltas = {
        key: timing.delta_for(placement[key]) for key, timing in timings.items()
    }
    return solve_retiming(graph, deltas).max_retiming
