"""Columnar ΔR profit tables for the Section 3.3 allocation problem.

The object model (:class:`repro.core.allocation.AllocationItem`) is the
right shape for building, validating and explaining an allocation
instance, but the hot consumers -- the annealing walk's candidate
scoring, the brute-force oracle's subset enumeration and the result
finalization -- only ever need three per-item columns: the space
requirement ``sp_m``, the profit ``ΔR(m)`` and the deadline-ordered key.
:class:`ProfitTable` extracts those columns **once per problem** into
dense numpy arrays (plus plain-``int`` list mirrors for scalar hot loops,
where Python lists beat numpy item access), so a candidate subset is
scored with a dot product instead of a re-walk of the object graph.

Bit-identity contract: every value the table hands back is a plain
Python ``int`` (or a list/array thereof), never a numpy scalar, so
results and :class:`~repro.core.search.SearchStats` built through the
table are byte-identical to the object path. ``repro.verify --search``
enforces that contract differentially.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, List, Sequence, Tuple

#: Minimum numpy release the columnar engines are tested against.
#: (``numpy >= 1.22`` is the floor pinned in ``pyproject.toml``: it is
#: the first release with stable typed ``np.int64`` matmul promotion on
#: every platform the CI matrix covers.)
NUMPY_FLOOR = (1, 22)


def require_numpy_floor(module_name: str):
    """Import numpy and assert the columnar floor with a clear error.

    Called at import time by every columnar module so a too-old numpy
    fails loudly at the module boundary instead of deep inside an
    array expression with a confusing ``TypeError``.
    """
    try:
        import numpy as np
    except ImportError as exc:  # pragma: no cover - environment guard
        raise ImportError(
            f"{module_name} requires numpy >= "
            f"{'.'.join(map(str, NUMPY_FLOOR))}; numpy is not installed"
        ) from exc
    match = re.match(r"(\d+)\.(\d+)", np.__version__)
    if match and tuple(map(int, match.groups())) < NUMPY_FLOOR:
        raise ImportError(
            f"{module_name} requires numpy >= "
            f"{'.'.join(map(str, NUMPY_FLOOR))} for the columnar engines, "
            f"found {np.__version__}; upgrade numpy or use the object "
            f"engines (allocator engine='object', sim modes full/steady)"
        )
    return np


np = require_numpy_floor(__name__)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.allocation import (
        AllocationProblem,
        AllocationResult,
    )

EdgeKey = Tuple[int, int]


class ProfitTable:
    """Per-item size/profit/feasibility columns of one allocation instance.

    Built once per :class:`~repro.core.allocation.AllocationProblem`
    (and cached on it -- see :meth:`of`), then shared by every columnar
    consumer: the annealing walk, the vectorized brute-force oracle and
    the finalization helper.

    Attributes:
        keys: item edge keys, in the problem's deadline order.
        slots: ``int64`` array of space requirements ``sp_m``.
        delta_r: ``int64`` array of profits ``ΔR(m)``.
        deadlines: ``int64`` array of deadlines ``d_m``.
        slots_list / delta_list: plain-``int`` mirrors of the arrays for
            scalar hot loops (numpy item access costs more than a list
            index; vector ops cost far less than a Python loop -- the
            table keeps both so each call site uses the cheaper form).
    """

    __slots__ = (
        "keys", "slots", "delta_r", "deadlines",
        "slots_list", "delta_list", "_index_of",
    )

    def __init__(self, items: Sequence) -> None:
        self.keys: List[EdgeKey] = [item.key for item in items]
        self.slots_list: List[int] = [item.slots for item in items]
        self.delta_list: List[int] = [item.delta_r for item in items]
        self.slots = np.asarray(self.slots_list, dtype=np.int64)
        self.delta_r = np.asarray(self.delta_list, dtype=np.int64)
        self.deadlines = np.asarray(
            [item.deadline for item in items], dtype=np.int64
        )
        self._index_of = {key: i for i, key in enumerate(self.keys)}

    @classmethod
    def of(cls, problem: "AllocationProblem") -> "ProfitTable":
        """The problem's cached table (built on first use).

        The cache keys on object identity; callers that mutate
        ``problem.items`` in place must delete ``problem._profit_table``
        (every supported path builds problems immutably).
        """
        table = getattr(problem, "_profit_table", None)
        if table is None or table.num_items != len(problem.items):
            table = cls(problem.items)
            problem._profit_table = table
        return table

    @property
    def num_items(self) -> int:
        return len(self.keys)

    def index_of(self, key: EdgeKey) -> int:
        return self._index_of[key]

    def member_mask(self, keys: Sequence[EdgeKey]):
        """Boolean membership column for a key collection."""
        mask = np.zeros(self.num_items, dtype=bool)
        for key in keys:
            index = self._index_of.get(key)
            if index is not None:
                mask[index] = True
        return mask

    def movable_indices(self, capacity_slots: int) -> List[int]:
        """Ascending indices of items that could ever fit the capacity."""
        return np.flatnonzero(self.slots <= capacity_slots).tolist()

    # ------------------------------------------------------------------
    # candidate scoring
    # ------------------------------------------------------------------
    def score_mask(self, mask) -> Tuple[int, int]:
        """``(profit, slots)`` of one boolean candidate, as plain ints."""
        return (
            int(self.delta_r[mask].sum()),
            int(self.slots[mask].sum()),
        )

    def score_masks(self, masks):
        """Batch-score candidates: ``(profits, slots)`` ``int64`` arrays.

        ``masks`` is a ``(k, n)`` boolean (or 0/1) matrix -- one row per
        candidate subset. Scoring is two matrix-vector products; this is
        the columnar replacement for re-walking the item objects once
        per candidate.
        """
        matrix = np.asarray(masks)
        if matrix.ndim != 2 or matrix.shape[1] != self.num_items:
            raise ValueError(
                f"masks must be (k, {self.num_items}), got {matrix.shape}"
            )
        weights = matrix.astype(np.int64, copy=False)
        return weights @ self.delta_r, weights @ self.slots

    def feasible(self, masks, capacity_slots: int):
        """Boolean feasibility column for a batch of candidates."""
        _, slots = self.score_masks(masks)
        return slots <= capacity_slots

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def result_from_mask(
        self, method: str, problem: "AllocationProblem", mask
    ) -> "AllocationResult":
        """Build an :class:`AllocationResult` from a boolean member mask.

        Field-identical to :func:`repro.core.allocation._finalize` on the
        equivalent chosen-item sequence: ``cached`` lists keys in item
        (deadline) order and profit/slots are plain ints summed by the
        table.
        """
        from repro.core.allocation import AllocationResult
        from repro.pim.memory import Placement

        chosen = np.asarray(mask, dtype=bool)
        if chosen.shape != (self.num_items,):
            raise ValueError(
                f"mask must have shape ({self.num_items},), "
                f"got {chosen.shape}"
            )
        placements = {key: Placement.EDRAM for key in problem.indifferent}
        cached: List[EdgeKey] = []
        for index, key in enumerate(self.keys):
            if chosen[index]:
                placements[key] = Placement.CACHE
                cached.append(key)
            else:
                placements[key] = Placement.EDRAM
        profit, slots = self.score_mask(chosen)
        return AllocationResult(
            method=method,
            placements=placements,
            cached=cached,
            total_delta_r=profit,
            slots_used=slots,
            capacity_slots=problem.capacity_slots,
        )


def score_masks_object(problem: "AllocationProblem", masks) -> List[Tuple[int, int]]:
    """Reference scorer: re-walk the item objects once per candidate.

    This is the shape of the pre-columnar anneal scoring (one pass over
    ``problem.items`` per scored candidate) kept as the differential
    oracle and the baseline of ``benchmarks/test_columnar_compile.py``.
    """
    items = problem.items
    n = len(items)
    scores: List[Tuple[int, int]] = []
    for mask in masks:
        profit = 0
        slots = 0
        for index in range(n):
            if mask[index]:
                item = items[index]
                profit += item.delta_r
                slots += item.slots
        scores.append((profit, slots))
    return scores
