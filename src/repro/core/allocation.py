"""Optimal data allocation for convolutional connections (paper Section 3.3).

The problem: given the analyzed intermediate results (each with a cache
space requirement ``sp_m`` and a retiming-value reduction ``ΔR(m)`` earned
by caching it) and the aggregate on-chip cache capacity ``S``, choose the
subset to cache that maximizes the total profit ``Σ ΔR``.

Following the paper:

1. intermediate results are sorted by deadline ``d_m`` (``O(n log n)``
   precomputation, Section 3.3.1);
2. results with ``ΔR(m) = 0`` (cases 1, 4, 6) cannot shorten the prologue
   and are sent to eDRAM up front, leaving the cache to the competing
   results of cases 2, 3 and 5 (Section 3.2);
3. the recursive formulation ``B[S, m]`` (Section 3.3.2) is evaluated
   bottom-up -- a 0/1-knapsack table over (cache slots x results) -- and
   the optimal subset is reconstructed from it (Section 3.3.3).

Ablation allocators (greedy, random, all-eDRAM, capacity-oblivious oracle)
share the same interface so experiments can swap them in.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.retiming import EdgeTiming, RetimingError
from repro.pim.memory import Placement

EdgeKey = Tuple[int, int]


class AllocationError(RetimingError):
    """A malformed allocation instance reached an allocator entry point.

    Subclasses :class:`RetimingError` so existing callers that guard the
    analysis pipeline with ``except RetimingError`` keep working.
    """


class UnknownAllocatorError(AllocationError, ValueError):
    """An allocator spec named no registered allocator.

    Carries the offending ``spec`` and the sorted registry ``choices`` so
    CLIs and error paths can enumerate what *would* have worked; also a
    :class:`ValueError`, so callers that guarded the old bare-``ValueError``
    paths keep working.
    """

    def __init__(self, spec: str, detail: str = ""):
        self.spec = spec
        self.choices = sorted(ALLOCATORS)
        message = (
            f"unknown allocator {spec!r}; registered: "
            f"{', '.join(self.choices)} "
            f"(budgeted allocators also accept a spec suffix, e.g. "
            f"'anneal:5000' or 'portfolio:5000')"
        )
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class AllocatorFactory:
    """Explicit marker for allocators that need per-run construction.

    Most allocators are plain callables ``problem -> AllocationResult``.
    Some (the critical-path-aware iterative extension) additionally need
    the graph topology and the Section 3.2 edge analysis, which only exist
    *inside* a pipeline run. Those register as factories: either

    * a **class** subclassing :class:`AllocatorFactory` whose constructor
      is ``(graph, timings)`` and whose instances are the allocator, or
    * an **instance** of an :class:`AllocatorFactory` subclass overriding
      :meth:`build`.

    The pipeline resolves both shapes through :func:`resolve_allocator`.
    This replaces the old ``isinstance(allocator, type)`` heuristic, which
    treated *every* class as a ``(graph, timings)`` factory and therefore
    silently miscalled allocator classes with other constructor shapes.
    """

    def build(
        self,
        graph: Any,
        timings: Mapping[EdgeKey, EdgeTiming],
    ) -> "Allocator":
        """Construct the per-run allocator; default rebinds the class."""
        return type(self)(graph, timings)  # type: ignore[call-arg]


#: A cache-allocation strategy: AllocationProblem -> AllocationResult.
Allocator = Callable[["AllocationProblem"], "AllocationResult"]

#: Registry names that accept an evaluation-budget suffix (``name:evals``).
BUDGETED_ALLOCATORS = frozenset({"anneal", "portfolio"})


def parse_allocator_spec(spec: str) -> Tuple[str, Optional[int]]:
    """Parse an allocator spec string into ``(name, budget)``.

    Accepted forms: a bare registry name (``dp``, ``greedy``, ``anneal``)
    or a budgeted name with an evaluation-count suffix (``anneal:5000``,
    ``portfolio:800``). Raises :class:`UnknownAllocatorError` for unknown
    names, budget suffixes on non-budgeted allocators, and malformed or
    non-positive budgets — always enumerating the registry, mirroring the
    ``--allocator`` CLI choices.
    """
    if not isinstance(spec, str):
        raise AllocationError(
            f"allocator spec must be a string, got {type(spec).__name__}"
        )
    name, _, suffix = spec.partition(":")
    if name not in ALLOCATORS:
        raise UnknownAllocatorError(spec)
    if not suffix:
        if ":" in spec:
            raise UnknownAllocatorError(spec, "empty budget suffix")
        return name, None
    if name not in BUDGETED_ALLOCATORS:
        raise UnknownAllocatorError(
            spec,
            f"{name!r} does not take a budget (budgeted: "
            f"{', '.join(sorted(BUDGETED_ALLOCATORS))})",
        )
    try:
        budget = int(suffix)
    except ValueError:
        raise UnknownAllocatorError(
            spec, f"budget {suffix!r} is not an integer"
        ) from None
    if budget < 0:
        raise UnknownAllocatorError(spec, f"budget must be >= 0, got {budget}")
    return name, budget


def allocator_from_spec(spec: str) -> Any:
    """Resolve a spec string to a registry entry or a budgeted instance.

    Bare names return the registry entry itself; budgeted specs construct
    a fresh instance with that evaluation budget (deterministic default
    seed), so two sessions asking for ``anneal:500`` get equal-behaving
    allocators.
    """
    name, budget = parse_allocator_spec(spec)
    if budget is None:
        return ALLOCATORS[name]
    from repro.core.search import AllocatorPortfolio, AnnealAllocator

    if name == "anneal":
        return AnnealAllocator(max_evals=budget)
    return AllocatorPortfolio(max_evals=budget)


def canonical_allocator_spec(spec: str) -> str:
    """Normalize a spec for identity purposes (plan-cache keys).

    Budgeted allocators always render with an explicit budget
    (``anneal`` -> ``anneal:2000``), so a plan compiled under the default
    budget and one compiled under ``anneal:2000`` share a cache entry,
    while every distinct budget keys a distinct plan. Non-budgeted names
    pass through unchanged — healthy ``dp`` keys stay byte-identical to
    every release before the search allocator existed.
    """
    name, budget = parse_allocator_spec(spec)
    if name not in BUDGETED_ALLOCATORS:
        return name
    if budget is None:
        from repro.core.search import DEFAULT_SEARCH_BUDGET

        budget = DEFAULT_SEARCH_BUDGET
    return f"{name}:{budget}"


def resolve_allocator(
    allocator: Any,
    graph: Any,
    timings: Mapping[EdgeKey, EdgeTiming],
) -> Allocator:
    """Resolve a registry entry / user-supplied allocator to a callable.

    * **string spec** (``"dp"``, ``"anneal:5000"``): looked up / built via
      :func:`allocator_from_spec`, then resolved like the entry it names;
      unknown names raise :class:`UnknownAllocatorError` enumerating the
      registry.
    * ``AllocatorFactory`` subclass (the class itself): instantiated as
      ``allocator(graph, timings)``.
    * ``AllocatorFactory`` instance: resolved via ``.build(graph, timings)``
      — so a factory instance is *rebound to the current run's graph*
      instead of being silently misused across graphs.
    * any other callable (function or callable-class *instance*): used
      directly, untouched.
    * any other *class*: rejected with a typed error instead of being
      guessed at (the old behavior called it with ``(graph, timings)``).
    """
    if isinstance(allocator, str):
        allocator = allocator_from_spec(allocator)
    if isinstance(allocator, type):
        if issubclass(allocator, AllocatorFactory):
            return allocator(graph, timings)  # type: ignore[call-arg]
        raise AllocationError(
            f"allocator class {allocator.__name__!r} is not an "
            f"AllocatorFactory; pass an instance, or subclass "
            f"AllocatorFactory to opt into per-run (graph, timings) "
            f"construction"
        )
    if isinstance(allocator, AllocatorFactory):
        return allocator.build(graph, timings)
    if not callable(allocator):
        raise AllocationError(
            f"allocator {allocator!r} is neither callable nor an "
            f"AllocatorFactory"
        )
    return allocator


@dataclass(frozen=True)
class AllocationItem:
    """One cache-competing intermediate result, in DP order.

    Attributes:
        key: edge identifier ``(producer, consumer)``.
        slots: space requirement ``sp_m`` in cache slots.
        delta_r: profit ``ΔR(m)`` -- prologue iterations saved by caching.
        deadline: sort key ``d_m``.
    """

    key: EdgeKey
    slots: int
    delta_r: int
    deadline: int


@dataclass
class AllocationProblem:
    """A deadline-sorted instance of the Section 3.3 allocation problem."""

    items: List[AllocationItem]
    capacity_slots: int
    #: edges excluded from the DP because ``ΔR = 0`` (placed in eDRAM).
    indifferent: List[EdgeKey] = field(default_factory=list)

    @classmethod
    def from_timings(
        cls,
        timings: Mapping[EdgeKey, EdgeTiming],
        capacity_slots: int,
    ) -> "AllocationProblem":
        """Build the DP instance from the Section 3.2 edge analysis."""
        if capacity_slots < 0:
            raise AllocationError("capacity_slots must be >= 0")
        items: List[AllocationItem] = []
        indifferent: List[EdgeKey] = []
        for key, timing in timings.items():
            if timing.delta_r > 0:
                items.append(
                    AllocationItem(
                        key=key,
                        slots=timing.slots,
                        delta_r=timing.delta_r,
                        deadline=timing.deadline,
                    )
                )
            else:
                indifferent.append(key)
        # Section 3.3.1: schedule (and therefore index) in increasing order
        # of deadline; ties broken by key for determinism.
        items.sort(key=lambda item: (item.deadline, item.key))
        indifferent.sort()
        return cls(items=items, capacity_slots=capacity_slots,
                   indifferent=indifferent)

    def validate(self) -> None:
        """Reject malformed instances with a typed error.

        Every allocator entry point calls this before doing any work, so a
        bad instance (hand-built, deserialized, or corrupted upstream)
        fails loudly instead of producing an infeasible or silently wrong
        allocation. Checks: non-negative integer capacity, strictly
        positive per-item slot demands, non-negative profits, and no
        duplicate edge keys.
        """
        if not isinstance(self.capacity_slots, int):
            raise AllocationError(
                f"capacity_slots must be an int, got "
                f"{type(self.capacity_slots).__name__}"
            )
        if self.capacity_slots < 0:
            raise AllocationError(
                f"capacity_slots must be >= 0, got {self.capacity_slots}"
            )
        seen = set()
        for item in self.items:
            if item.slots <= 0:
                raise AllocationError(
                    f"item {item.key}: slots must be >= 1, got {item.slots}"
                )
            if item.delta_r < 0:
                raise AllocationError(
                    f"item {item.key}: delta_r must be >= 0, "
                    f"got {item.delta_r}"
                )
            if item.key in seen:
                raise AllocationError(f"duplicate item key {item.key}")
            seen.add(item.key)
        overlap = seen & set(self.indifferent)
        if overlap:
            raise AllocationError(
                f"keys both competing and indifferent: {sorted(overlap)[:5]}"
            )

    @property
    def num_items(self) -> int:
        return len(self.items)

    def total_demand_slots(self) -> int:
        return sum(item.slots for item in self.items)


@dataclass
class AllocationResult:
    """Outcome of one allocation strategy.

    ``placements`` covers *every* edge the problem saw (competing and
    indifferent); ``cached`` lists the edges put in on-chip cache;
    ``total_delta_r`` is the achieved profit ``Σ ΔR`` over cached edges.
    """

    method: str
    placements: Dict[EdgeKey, Placement]
    cached: List[EdgeKey]
    total_delta_r: int
    slots_used: int
    capacity_slots: int
    #: search observability (set by the ``anneal``/``portfolio``
    #: allocators); never serialized into the plan payload.
    search_stats: Optional[Any] = field(default=None, compare=False, repr=False)

    @property
    def num_cached(self) -> int:
        return len(self.cached)

    def cache_utilization(self) -> float:
        if self.capacity_slots == 0:
            return 0.0
        return self.slots_used / self.capacity_slots


def _finalize(
    method: str,
    problem: AllocationProblem,
    chosen: Sequence[AllocationItem],
) -> AllocationResult:
    placements: Dict[EdgeKey, Placement] = {
        key: Placement.EDRAM for key in problem.indifferent
    }
    chosen_keys = []
    profit = 0
    slots = 0
    chosen_set = {item.key for item in chosen}
    for item in problem.items:
        if item.key in chosen_set:
            placements[item.key] = Placement.CACHE
            chosen_keys.append(item.key)
            profit += item.delta_r
            slots += item.slots
        else:
            placements[item.key] = Placement.EDRAM
    return AllocationResult(
        method=method,
        placements=placements,
        cached=chosen_keys,
        total_delta_r=profit,
        slots_used=slots,
        capacity_slots=problem.capacity_slots,
    )


def dp_allocate(problem: AllocationProblem) -> AllocationResult:
    """The paper's dynamic program ``B[S, m]`` (Sections 3.3.2-3.3.3).

    ``B[s, m]`` is the maximum total profit achievable with the first ``m``
    deadline-ordered results under capacity ``s``::

        B[s, 0] = 0
        B[s, m] = B[s, m-1]                       if sp_m > s
        B[s, m] = max(B[s, m-1],
                      B[s - sp_m, m-1] + ΔR(m))   otherwise

    Each entry takes O(1), so the table costs ``O(n * S)`` time and space;
    the optimal subset is reconstructed by walking the table backwards.
    The result is profit-optimal for the capacity (standard 0/1-knapsack
    optimality; the deadline order fixes tie-breaking as the paper
    prescribes).
    """
    import numpy as np

    problem.validate()
    capacity = problem.capacity_slots
    items = problem.items
    n = len(items)
    # rows[m][s] = B[s, m]; row 0 is all zeros. Vectorized over s with
    # numpy: each item's row is a shifted-and-offset max of the previous.
    rows = np.zeros((n + 1, capacity + 1), dtype=np.int64)
    for m, item in enumerate(items, start=1):
        previous = rows[m - 1]
        current = previous.copy()
        weight, value = item.slots, item.delta_r
        if weight <= capacity:
            taken = previous[: capacity + 1 - weight] + value
            np.maximum(current[weight:], taken, out=current[weight:])
        rows[m] = current

    # Reconstruction: item m was taken iff B[s, m] != B[s, m-1].
    chosen: List[AllocationItem] = []
    s = capacity
    for m in range(n, 0, -1):
        if rows[m][s] != rows[m - 1][s]:
            item = items[m - 1]
            chosen.append(item)
            s -= item.slots
    chosen.reverse()
    return _finalize("dp", problem, chosen)


def greedy_allocate(problem: AllocationProblem) -> AllocationResult:
    """Density-greedy baseline: cache by descending ``ΔR / sp`` while it fits."""
    problem.validate()
    order = sorted(
        problem.items,
        key=lambda item: (-item.delta_r / item.slots, item.slots, item.key),
    )
    chosen: List[AllocationItem] = []
    free = problem.capacity_slots
    for item in order:
        if item.slots <= free:
            chosen.append(item)
            free -= item.slots
    return _finalize("greedy", problem, chosen)


def random_allocate(problem: AllocationProblem, seed: int = 0) -> AllocationResult:
    """Random-order first-fit baseline (ablation floor)."""
    problem.validate()
    rng = random.Random(seed)
    order = list(problem.items)
    rng.shuffle(order)
    chosen: List[AllocationItem] = []
    free = problem.capacity_slots
    for item in order:
        if item.slots <= free:
            chosen.append(item)
            free -= item.slots
    return _finalize("random", problem, chosen)


def all_edram_allocate(problem: AllocationProblem) -> AllocationResult:
    """Everything in eDRAM: the no-cache floor."""
    problem.validate()
    return _finalize("all-edram", problem, [])


def oracle_allocate(problem: AllocationProblem) -> AllocationResult:
    """Capacity-oblivious oracle: every profitable result cached.

    Upper-bounds what any allocator can achieve; useful to measure how much
    of the headroom the DP captures under the real capacity.
    """
    problem.validate()
    return _finalize("oracle", problem, list(problem.items))


#: Registry used by the ablation experiments.
ALLOCATORS = {
    "dp": dp_allocate,
    "greedy": greedy_allocate,
    "random": random_allocate,
    "all-edram": all_edram_allocate,
    "oracle": oracle_allocate,
}
