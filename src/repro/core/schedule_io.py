"""Serialize complete periodic schedules (compile once, deploy many).

A :class:`PeriodicSchedule` is the pipeline's deployable artifact: the
kernel placements, the retiming function and the per-edge placements fully
determine execution. This module round-trips schedules (graph included)
through JSON so a schedule compiled offline can be shipped to a runtime,
archived with an experiment, or diffed across pipeline versions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.schedule import (
    KernelSchedule,
    PeriodicSchedule,
    PlacedOp,
    ScheduleError,
    validate_periodic_schedule,
)
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.pim.memory import Placement

FORMAT_VERSION = 1


def schedule_to_dict(schedule: PeriodicSchedule) -> Dict[str, Any]:
    """Serialize a schedule (and its graph) to a JSON-compatible dict."""
    return {
        "format_version": FORMAT_VERSION,
        "graph": graph_to_dict(schedule.graph),
        "period": schedule.period,
        "kernel": [
            {
                "op_id": p.op_id,
                "pe": p.pe,
                "start": p.start,
                "finish": p.finish,
            }
            for p in schedule.kernel.placements.values()
        ],
        "retiming": {str(k): v for k, v in schedule.retiming.items()},
        "edge_retiming": [
            {"producer": i, "consumer": j, "value": v}
            for (i, j), v in schedule.edge_retiming.items()
        ],
        "placements": [
            {"producer": i, "consumer": j, "where": p.value}
            for (i, j), p in schedule.placements.items()
        ],
        "transfer_times": [
            {"producer": i, "consumer": j, "units": t}
            for (i, j), t in schedule.transfer_times.items()
        ],
    }


def schedule_from_dict(payload: Dict[str, Any]) -> PeriodicSchedule:
    """Deserialize and semantically validate a schedule."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ScheduleError(f"unsupported schedule format version {version!r}")
    graph = graph_from_dict(payload["graph"])
    kernel = KernelSchedule(
        period=int(payload["period"]),
        placements={
            int(rec["op_id"]): PlacedOp(
                int(rec["op_id"]), int(rec["pe"]),
                int(rec["start"]), int(rec["finish"]),
            )
            for rec in payload["kernel"]
        },
    )
    schedule = PeriodicSchedule(
        graph=graph,
        kernel=kernel,
        retiming={int(k): int(v) for k, v in payload["retiming"].items()},
        edge_retiming={
            (int(r["producer"]), int(r["consumer"])): int(r["value"])
            for r in payload["edge_retiming"]
        },
        placements={
            (int(r["producer"]), int(r["consumer"])): Placement(r["where"])
            for r in payload["placements"]
        },
        transfer_times={
            (int(r["producer"]), int(r["consumer"])): int(r["units"])
            for r in payload["transfer_times"]
        },
    )
    validate_periodic_schedule(schedule)
    return schedule


def schedule_to_json(
    schedule: PeriodicSchedule, path: Union[str, Path]
) -> None:
    """Write a schedule to ``path`` as JSON."""
    Path(path).write_text(json.dumps(schedule_to_dict(schedule), indent=2))


def schedule_from_json(path: Union[str, Path]) -> PeriodicSchedule:
    """Load (and validate) a schedule written by :func:`schedule_to_json`."""
    return schedule_from_dict(json.loads(Path(path).read_text()))
