"""Para-CONV core: retiming, DP data allocation, scheduling (paper Section 3).

The pipeline (:class:`repro.core.paraconv.ParaConv`) combines:

* :mod:`repro.core.scheduler` -- the compacted steady-state kernel schedule
  (the "objective schedule" of Section 3.3.3) and the dependency-honoring
  list scheduler used by baselines,
* :mod:`repro.core.retiming` -- per-edge required retiming values, the
  Theorem 3.1 bound, vertex-retiming propagation and the prologue,
* :mod:`repro.core.cases` -- the six-case classification of Figure 4,
* :mod:`repro.core.allocation` -- the dynamic-programming model ``B[S, m]``
  of Section 3.3 plus ablation allocators,
* :mod:`repro.core.baseline` -- the SPARTA comparison scheme [6].
"""

from repro.core.schedule import (
    KernelSchedule,
    PeriodicSchedule,
    PlacedOp,
    ScheduleError,
    validate_kernel,
    validate_periodic_schedule,
)
from repro.core.scheduler import (
    compact_kernel_schedule,
    list_schedule,
    load_balance_bound,
)
from repro.core.retiming import (
    DeltaRAccounting,
    EdgeTiming,
    RetimingError,
    RetimingSolution,
    analyze_edges,
    delta_r_accounting,
    required_retiming,
    solve_retiming,
)
from repro.core.cases import RetimingCase, classify, classify_all
from repro.core.allocation import (
    AllocationResult,
    AllocationProblem,
    dp_allocate,
    greedy_allocate,
    random_allocate,
    all_edram_allocate,
    oracle_allocate,
)
from repro.core.expansion import ExpandedSchedule, expand, verify_expansion
from repro.core.gantt import render_kernel, render_retiming
from repro.core.iterative import IterativeAllocator
from repro.core.search import (
    AllocatorPortfolio,
    AnnealAllocator,
    SearchStats,
)
from repro.core.liveness import (
    live_instances,
    liveness_weighted_problem,
    peak_cache_demand,
)
from repro.core.paraconv import ParaConv, ParaConvResult
from repro.core.schedule_io import (
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
)
from repro.core.baseline import SpartaScheduler, SpartaResult

__all__ = [
    "AllocationProblem",
    "AllocationResult",
    "DeltaRAccounting",
    "EdgeTiming",
    "delta_r_accounting",
    "ExpandedSchedule",
    "KernelSchedule",
    "ParaConv",
    "ParaConvResult",
    "PeriodicSchedule",
    "PlacedOp",
    "RetimingCase",
    "RetimingError",
    "RetimingSolution",
    "ScheduleError",
    "IterativeAllocator",
    "AnnealAllocator",
    "AllocatorPortfolio",
    "SearchStats",
    "SpartaResult",
    "SpartaScheduler",
    "all_edram_allocate",
    "analyze_edges",
    "classify",
    "classify_all",
    "compact_kernel_schedule",
    "dp_allocate",
    "greedy_allocate",
    "list_schedule",
    "load_balance_bound",
    "oracle_allocate",
    "random_allocate",
    "required_retiming",
    "solve_retiming",
    "expand",
    "live_instances",
    "liveness_weighted_problem",
    "peak_cache_demand",
    "render_kernel",
    "schedule_from_dict",
    "schedule_from_json",
    "schedule_to_dict",
    "schedule_to_json",
    "render_retiming",
    "validate_kernel",
    "validate_periodic_schedule",
    "verify_expansion",
]
