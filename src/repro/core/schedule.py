"""Schedule objects and semantic validation.

Two layers of schedule exist in Para-CONV:

* a :class:`KernelSchedule` -- the steady-state loop kernel: one placement
  ``(pe, start, finish)`` per operation inside one iteration of length
  ``period`` (the paper's ``p``),
* a :class:`PeriodicSchedule` -- the kernel plus the retiming function, the
  per-edge placements and the prologue, i.e. everything needed to execute
  ``N`` iterations and to report the paper's metrics.

:func:`validate_periodic_schedule` is the ground-truth semantic check: it
verifies, for every unrolled dependency, that the producer instance's data
(including its placement-dependent transfer time) arrives before the
consumer instance starts. All correctness tests lean on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.graph.taskgraph import TaskGraph
from repro.pim.memory import Placement


class ScheduleError(ValueError):
    """Raised when a schedule violates resource or dependency semantics."""


@dataclass(frozen=True)
class PlacedOp:
    """One operation's placement inside the kernel window.

    ``start``/``finish`` are offsets within the iteration, ``0 <= start <
    finish <= period``; the paper's absolute times follow as
    ``s_i^l = start + (l - 1) p``.
    """

    op_id: int
    pe: int
    start: int
    finish: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.finish <= self.start:
            raise ScheduleError(
                f"op {self.op_id}: invalid window [{self.start}, {self.finish})"
            )
        if self.pe < 0:
            raise ScheduleError(f"op {self.op_id}: negative PE {self.pe}")

    @property
    def duration(self) -> int:
        return self.finish - self.start


@dataclass
class KernelSchedule:
    """Steady-state schedule of one iteration on the PE array."""

    period: int
    placements: Dict[int, PlacedOp] = field(default_factory=dict)

    def placement(self, op_id: int) -> PlacedOp:
        try:
            return self.placements[op_id]
        except KeyError:
            raise ScheduleError(f"op {op_id} missing from kernel") from None

    def start(self, op_id: int) -> int:
        """``s_i`` -- start offset of ``V_i`` within the iteration."""
        return self.placement(op_id).start

    def finish(self, op_id: int) -> int:
        """``f_i`` -- finish offset of ``V_i`` within the iteration."""
        return self.placement(op_id).finish

    def pe_of(self, op_id: int) -> int:
        return self.placement(op_id).pe

    def makespan(self) -> int:
        return max((p.finish for p in self.placements.values()), default=0)

    def pes_used(self) -> int:
        return len({p.pe for p in self.placements.values()})

    def utilization(self, num_pes: int) -> float:
        """Busy fraction of the PE array over one period."""
        if self.period <= 0 or num_pes <= 0:
            return 0.0
        busy = sum(p.duration for p in self.placements.values())
        return busy / (self.period * num_pes)


def validate_kernel(
    graph: TaskGraph,
    kernel: KernelSchedule,
    num_pes: int,
    duration_of=None,
) -> None:
    """Check kernel resource feasibility (not dependencies).

    * every operation is placed exactly once,
    * every placement fits in ``[0, period]`` on a valid PE,
    * every placement occupies exactly its expected duration --
      ``c_i`` by default, or ``duration_of(op_id, pe)`` on machines where
      occupancy depends on the placement (heterogeneous arrays),
    * no two operations overlap on the same PE.
    """
    op_ids = {op.op_id for op in graph.operations()}
    placed = set(kernel.placements)
    if placed != op_ids:
        missing = sorted(op_ids - placed)
        extra = sorted(placed - op_ids)
        raise ScheduleError(
            f"kernel op mismatch: missing={missing[:5]}, extra={extra[:5]}"
        )
    per_pe: Dict[int, List[PlacedOp]] = {}
    for placement in kernel.placements.values():
        if placement.pe >= num_pes:
            raise ScheduleError(
                f"op {placement.op_id} on PE {placement.pe} but only "
                f"{num_pes} PEs exist"
            )
        if placement.finish > kernel.period:
            raise ScheduleError(
                f"op {placement.op_id} finishes at {placement.finish} past "
                f"period {kernel.period}"
            )
        if duration_of is not None:
            expected = duration_of(placement.op_id, placement.pe)
        else:
            expected = graph.operation(placement.op_id).execution_time
        if placement.duration != expected:
            raise ScheduleError(
                f"op {placement.op_id} occupies {placement.duration} units, "
                f"execution time is {expected}"
            )
        per_pe.setdefault(placement.pe, []).append(placement)
    for pe, placements in per_pe.items():
        placements.sort(key=lambda p: p.start)
        for left, right in zip(placements, placements[1:]):
            if right.start < left.finish:
                raise ScheduleError(
                    f"PE {pe}: ops {left.op_id} and {right.op_id} overlap "
                    f"([{left.start},{left.finish}) vs "
                    f"[{right.start},{right.finish}))"
                )


@dataclass
class PeriodicSchedule:
    """A complete retimed periodic schedule (kernel + retiming + placement).

    Attributes:
        kernel: steady-state placements with period ``p``.
        retiming: vertex retiming ``R(i)`` per operation.
        edge_retiming: intermediate-result retiming ``R(i, j)`` per edge.
        placements: cache/eDRAM placement per intermediate result.
        transfer_times: effective ``c_{i,j}`` per edge under its placement.
    """

    graph: TaskGraph
    kernel: KernelSchedule
    retiming: Dict[int, int]
    edge_retiming: Dict[Tuple[int, int], int]
    placements: Dict[Tuple[int, int], Placement]
    transfer_times: Dict[Tuple[int, int], int]

    @property
    def period(self) -> int:
        return self.kernel.period

    @property
    def max_retiming(self) -> int:
        """``R_max = max_i R(T_i)`` -- prologue length in iterations."""
        return max(self.retiming.values(), default=0)

    @property
    def prologue_time(self) -> int:
        """``R_max * p`` (paper Section 3.2)."""
        return self.max_retiming * self.period

    def relative_retiming(self, producer: int, consumer: int) -> int:
        """``delta(i, j) = R(i) - R(j)`` -- iterations the data crosses."""
        return self.retiming[producer] - self.retiming[consumer]

    def total_time(self, iterations: int) -> int:
        """Prologue plus ``N`` steady-state iterations."""
        if iterations < 1:
            raise ScheduleError("iterations must be >= 1")
        return self.prologue_time + iterations * self.period

    def cached_edges(self) -> List[Tuple[int, int]]:
        """Keys of intermediate results allocated to the on-chip cache."""
        return [k for k, v in self.placements.items() if v is Placement.CACHE]

    def cache_slots_used(self, slots_required: Mapping[Tuple[int, int], int]) -> int:
        return sum(slots_required[k] for k in self.cached_edges())

    def prologue_rounds(self) -> List[List[int]]:
        """Operations executing in each prologue round (1..R_max).

        Round ``k`` runs the operations whose retiming reaches back that
        far: ``{i : R(i) >= R_max - k + 1}``. Earlier rounds are sparser;
        by round ``R_max + 1`` the full kernel repeats (steady state).
        """
        r_max = self.max_retiming
        rounds: List[List[int]] = []
        for k in range(1, r_max + 1):
            threshold = r_max - k + 1
            rounds.append(
                sorted(i for i, r in self.retiming.items() if r >= threshold)
            )
        return rounds


def validate_periodic_schedule(
    schedule: PeriodicSchedule, check_legality: bool = True
) -> None:
    """Semantic validation of a retimed periodic schedule.

    Checks, for every edge ``(i, j)``:

    1. *legality* (Definition 3.1): ``R(i) >= R(i,j) >= R(j)`` and all
       retimings non-negative;
    2. *Theorem 3.1 bound*: relative retiming ``R(i) - R(j) <= 2`` beyond
       what zero transfer would need -- concretely ``delta <= 2``;
    3. *data arrival*: with relative retiming ``delta = R(i) - R(j)``, the
       producer instance finishes and its data (transfer time ``c_ij``)
       arrives no later than the consumer instance starts::

           finish(i) + c_ij <= delta * p + start(j)

    Raises :class:`ScheduleError` on the first violation.
    """
    graph = schedule.graph
    kernel = schedule.kernel
    period = schedule.period
    if period <= 0:
        raise ScheduleError("period must be positive")
    for op in graph.operations():
        if op.op_id not in schedule.retiming:
            raise ScheduleError(f"no retiming value for op {op.op_id}")
        if schedule.retiming[op.op_id] < 0:
            raise ScheduleError(f"negative retiming for op {op.op_id}")
    for edge in graph.edges():
        key = edge.key
        if key not in schedule.placements:
            raise ScheduleError(f"no placement for intermediate result {key}")
        if key not in schedule.transfer_times:
            raise ScheduleError(f"no transfer time for intermediate result {key}")
        r_i = schedule.retiming[edge.producer]
        r_j = schedule.retiming[edge.consumer]
        delta = r_i - r_j
        if delta < 0:
            raise ScheduleError(
                f"edge {key}: R(i)={r_i} < R(j)={r_j} breaks the dependency"
            )
        if check_legality:
            r_ij = schedule.edge_retiming.get(key)
            if r_ij is None:
                raise ScheduleError(f"edge {key}: missing R(i,j)")
            if not r_i >= r_ij >= r_j:
                raise ScheduleError(
                    f"edge {key}: illegal retiming R(i)={r_i} >= "
                    f"R(i,j)={r_ij} >= R(j)={r_j} violated"
                )
        c_ij = schedule.transfer_times[key]
        if c_ij > period:
            raise ScheduleError(
                f"edge {key}: transfer time {c_ij} exceeds period {period} "
                "(Theorem 3.1 requires c_ij <= p)"
            )
        # Theorem 3.1 bounds the *required* relative retiming of each pair
        # at 2; the realized R(i) - R(j) may exceed it when other paths
        # push R(i) higher (the data simply waits longer, still legal).
        required = max(
            0,
            -(-(kernel.finish(edge.producer) + c_ij - kernel.start(edge.consumer)) // period),
        )
        if required > 2:
            raise ScheduleError(
                f"edge {key}: required relative retiming {required} exceeds "
                "the Theorem 3.1 bound of 2"
            )
        arrival = kernel.finish(edge.producer) + c_ij
        available = delta * period + kernel.start(edge.consumer)
        if arrival > available:
            raise ScheduleError(
                f"edge {key}: data arrives at offset {arrival} but consumer "
                f"starts at {available} (delta={delta}, p={period})"
            )
