"""Cache liveness analysis and liveness-aware allocation (extension).

A discovered gap in the paper's capacity model: an intermediate result
whose edge carries relative retiming ``delta > 0`` is produced ``delta``
iterations before it is consumed, so ``delta + 1`` instances of it are
alive concurrently in steady state. The Section 3.3 dynamic program
charges each cached result ``sp_m`` slots *once*; on the simulated machine
this shows up as transient cache overflows ("spills" in
:class:`repro.sim.executor.ExecutionTrace`).

This module provides:

* :func:`live_instances` / :func:`peak_cache_demand` -- the analysis;
* :func:`liveness_weighted_problem` -- an allocation instance whose item
  weights are ``sp_m * (delta_cache + 1)``, making the DP's capacity
  accounting sound. Running the pipeline with it (see
  ``ParaConv(..., liveness_aware=True)``) eliminates simulator spills at
  the cost of caching fewer results.
"""

from __future__ import annotations

from typing import Mapping, Tuple

from repro.core.allocation import AllocationItem, AllocationProblem
from repro.core.retiming import EdgeTiming, RetimingError

EdgeKey = Tuple[int, int]


def live_instances(delta: int) -> int:
    """Concurrent live instances of a result with relative retiming ``delta``.

    The instance consumed in round ``r`` was produced in round
    ``r - delta``; during any round, instances for rounds
    ``r .. r + delta`` coexist.
    """
    if delta < 0:
        raise RetimingError("delta must be >= 0")
    return delta + 1


def peak_cache_demand(
    timings: Mapping[EdgeKey, EdgeTiming],
    cached: Mapping[EdgeKey, bool],
) -> int:
    """Steady-state peak cache occupancy (slots) of a placement choice."""
    total = 0
    for key, timing in timings.items():
        if cached.get(key, False):
            total += timing.slots * live_instances(timing.delta_cache)
    return total


def liveness_weighted_problem(
    timings: Mapping[EdgeKey, EdgeTiming],
    capacity_slots: int,
    realized_delta: Mapping[EdgeKey, int] = None,
) -> AllocationProblem:
    """Build a Section 3.3 DP instance with liveness-corrected weights.

    Identical to :meth:`AllocationProblem.from_timings` except each item's
    space requirement is multiplied by its live-instance count, so the
    knapsack capacity bound matches steady-state peak occupancy.

    The live-instance count of an edge is ``R(i) - R(j) + 1`` -- the
    *realized* relative retiming, which path propagation can inflate well
    beyond the edge's own requirement ``delta_cache`` (the producer simply
    runs early and its data waits). Since realized retimings are only
    known after an allocation, callers typically run two passes: allocate,
    solve the retiming, then rebuild the problem passing the realized
    deltas (``ParaConv(liveness_aware=True)`` does exactly this). Without
    ``realized_delta`` the per-edge requirement is used as a lower-bound
    estimate.
    """
    if capacity_slots < 0:
        raise RetimingError("capacity_slots must be >= 0")
    base = AllocationProblem.from_timings(timings, capacity_slots)
    deltas = realized_delta or {}
    items = [
        AllocationItem(
            key=item.key,
            slots=timings[item.key].slots
            * live_instances(
                max(
                    deltas.get(item.key, 0),
                    timings[item.key].delta_cache,
                )
            ),
            delta_r=item.delta_r,
            deadline=item.deadline,
        )
        for item in base.items
    ]
    return AllocationProblem(
        items=items,
        capacity_slots=capacity_slots,
        indifferent=base.indifferent,
    )
