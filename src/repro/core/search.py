"""Anytime search-based allocation: simulated annealing + portfolio.

The paper's dynamic program (:func:`repro.core.allocation.dp_allocate`)
is profit-optimal for the clean knapsack model of Section 3.3. The
scenarios this repo now serves — degraded masks, fleet shard partitions,
liveness-reweighted instances — keep the *interface* of that model but
motivate a search-based escape hatch: an allocator that explores the
space of cache assignments under an explicit compile budget and is
*provably no worse than the DP where the DP is valid*.

:class:`AnnealAllocator` is that escape hatch:

* **DP-seeded** — the walk starts from the DP solution, so the answer can
  never regress below the paper's allocator (the anytime lower bound);
* **anytime** — the best feasible candidate seen so far is tracked and
  returned whenever the budget runs out, and the temperature schedule
  depends only on the evaluation index (never on the budget), so a run
  with budget ``b2 > b1`` replays the ``b1`` run exactly and then keeps
  going: quality is monotone in the budget by construction;
* **deterministic** — every move is drawn from a ``random.Random(seed)``
  stream over index-addressed (never hash-ordered) state, so the same
  (problem, seed, budget) triple produces the same answer in every
  process regardless of ``PYTHONHASHSEED``;
* **feasible throughout** — a candidate that would overflow the capacity
  is never accepted, so *every* intermediate state (not just the final
  answer) is a valid allocation;
* **budgeted in evaluations, not wall-clock** — ``max_evals`` counts
  scored neighborhood moves, so results are reproducible across machines.

Neighborhood moves flip one intermediate result in or out of the cache;
when an insertion does not fit, the move becomes a *swap* (evict one
random cached result to make room), which lets the walk cross capacity
ridges that pure flips cannot.

:class:`AllocatorPortfolio` races the DP against the search (and any
other member) on the same instance and keeps the best feasible answer —
the deployment shape: exact where exactness holds, search where it bends.

Both register in :data:`repro.core.allocation.ALLOCATORS` under
``anneal`` / ``portfolio`` and accept a budget suffix through the
allocator-spec syntax (``anneal:5000``) parsed by
:func:`repro.core.allocation.parse_allocator_spec`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.allocation import (
    ALLOCATORS,
    AllocationProblem,
    AllocationResult,
    _finalize,
    dp_allocate,
    greedy_allocate,
)
from repro.core.profit import ProfitTable, np

EdgeKey = Tuple[int, int]

#: Walk engines: ``columnar`` scores candidates on the dense
#: :class:`~repro.core.profit.ProfitTable` arrays (the production
#: default); ``object`` re-walks the item objects (the differential
#: oracle). The two are *bit-identical* -- same RNG stream, same
#: trajectory, same :class:`SearchStats` -- which
#: ``python -m repro.verify --search`` enforces on every benchmark.
SEARCH_ENGINES = ("columnar", "object")

#: Default evaluation budget for the annealing walk. Each evaluation is
#: O(1) (incremental profit/slot accounting), so the default compiles in
#: well under a millisecond on every paper benchmark.
DEFAULT_SEARCH_BUDGET = 2000

#: Evaluations between deterministic reheats. A fixed interval (never a
#: function of the budget) preserves the anytime prefix property.
REHEAT_INTERVAL = 500

#: Per-evaluation geometric cooling factor.
COOLING = 0.995

#: Registry of seed strategies for the walk's starting point.
SEEDERS: Dict[str, Callable[[AllocationProblem], AllocationResult]] = {
    "dp": dp_allocate,
    "greedy": greedy_allocate,
    "empty": lambda problem: _finalize("empty", problem, []),
}


@dataclass
class SearchStats:
    """Observability record of one search run (surfaced by ``--explain``).

    Attributes:
        method: allocator that produced the record (``anneal`` or
            ``portfolio``).
        seed: RNG seed of the walk.
        budget: the evaluation budget (``max_evals``).
        evals_used: evaluations actually spent (< budget on tiny
            instances where the walk is skipped).
        moves_accepted / moves_rejected: accepted vs rejected proposals.
        seed_profit: profit of the seeding solution the walk started from.
        seed_method: which seeder produced the starting point.
        best_profit: profit of the returned (best-so-far) candidate.
        best_eval: evaluation index at which the best candidate appeared
            (0 when the seed was never improved).
        trajectory: ``(eval_index, profit)`` at every strict improvement —
            the anytime curve; always starts at ``(0, seed_profit)``.
        winner: portfolio only — the member whose answer was returned.
    """

    method: str = "anneal"
    seed: int = 0
    budget: int = 0
    evals_used: int = 0
    moves_accepted: int = 0
    moves_rejected: int = 0
    seed_profit: int = 0
    seed_method: str = "dp"
    best_profit: int = 0
    best_eval: int = 0
    trajectory: List[Tuple[int, int]] = field(default_factory=list)
    winner: Optional[str] = None

    @property
    def improved_over_seed(self) -> bool:
        return self.best_profit > self.seed_profit

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "method": self.method,
            "seed": self.seed,
            "budget": self.budget,
            "evals_used": self.evals_used,
            "moves_accepted": self.moves_accepted,
            "moves_rejected": self.moves_rejected,
            "seed_profit": self.seed_profit,
            "seed_method": self.seed_method,
            "best_profit": self.best_profit,
            "best_eval": self.best_eval,
            "improved_over_seed": self.improved_over_seed,
            "trajectory": [list(point) for point in self.trajectory],
        }
        if self.winner is not None:
            payload["winner"] = self.winner
        return payload


class AnnealAllocator:
    """Seeded simulated-annealing allocator with anytime semantics.

    A plain ``problem -> AllocationResult`` callable (no graph coupling),
    so it slots into the registry, the differential oracle and the
    pipeline exactly like the DP. The returned result carries a
    :class:`SearchStats` record in ``result.search_stats``.

    Args:
        max_evals: evaluation budget; ``0`` returns the seed untouched.
        seed: RNG seed for the move stream.
        seed_from: seeding strategy (``dp`` — the anytime lower bound the
            acceptance tests pin — or ``greedy``/``empty`` for measuring
            how fast the walk climbs from a weak start).
        record_candidates: keep ``(profit, slots_used)`` of every
            *accepted* candidate in ``self.last_candidates`` (test hook
            for the feasibility-of-every-intermediate property).
        engine: ``columnar`` (default) scores candidates on the problem's
            :class:`~repro.core.profit.ProfitTable` arrays; ``object``
            re-walks the item objects. Bit-identical by contract.
    """

    def __init__(
        self,
        max_evals: int = DEFAULT_SEARCH_BUDGET,
        seed: int = 0,
        seed_from: str = "dp",
        record_candidates: bool = False,
        engine: str = "columnar",
    ):
        if max_evals < 0:
            raise ValueError(f"max_evals must be >= 0, got {max_evals}")
        if seed_from not in SEEDERS:
            known = ", ".join(sorted(SEEDERS))
            raise ValueError(f"unknown seed_from {seed_from!r}; known: {known}")
        if engine not in SEARCH_ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; known: "
                f"{', '.join(SEARCH_ENGINES)}"
            )
        self.max_evals = max_evals
        self.seed = seed
        self.seed_from = seed_from
        self.record_candidates = record_candidates
        self.engine = engine
        #: (profit, slots_used) of every accepted candidate of the last
        #: run, seed included (populated when ``record_candidates``).
        self.last_candidates: List[Tuple[int, int]] = []

    def __repr__(self) -> str:
        return (
            f"AnnealAllocator(max_evals={self.max_evals}, seed={self.seed}, "
            f"seed_from={self.seed_from!r}, engine={self.engine!r})"
        )

    def __call__(self, problem: AllocationProblem) -> AllocationResult:
        problem.validate()
        seeded = SEEDERS[self.seed_from](problem)
        stats = SearchStats(
            method="anneal",
            seed=self.seed,
            budget=self.max_evals,
            seed_profit=seeded.total_delta_r,
            seed_method=self.seed_from,
        )
        if self.engine == "columnar":
            return self._run_columnar(problem, seeded, stats)
        return self._run_object(problem, seeded, stats)

    # ------------------------------------------------------------------
    # object engine (the differential oracle: one attribute walk per move)
    # ------------------------------------------------------------------
    def _run_object(
        self,
        problem: AllocationProblem,
        seeded: AllocationResult,
        stats: SearchStats,
    ) -> AllocationResult:
        items = problem.items
        n = len(items)
        capacity = problem.capacity_slots
        in_cache = [item.key in set(seeded.cached) for item in items]
        cur_profit = seeded.total_delta_r
        cur_slots = seeded.slots_used
        best = list(in_cache)
        best_profit, best_slots = cur_profit, cur_slots
        stats.best_profit = best_profit
        stats.trajectory.append((0, best_profit))
        if self.record_candidates:
            self.last_candidates = [(cur_profit, cur_slots)]

        # Degenerate instances: nothing to move, or nothing ever fits.
        movable = [i for i in range(n) if items[i].slots <= capacity]
        if not movable or self.max_evals == 0:
            result = _finalize(
                "anneal",
                problem,
                [items[i] for i in range(n) if best[i]],
            )
            result.search_stats = stats
            return result

        rng = random.Random(self.seed)
        # Temperature scale: the largest single-item profit, so an initial
        # downhill move of typical size is accepted with probability ~1/e.
        t0 = float(max(item.delta_r for item in items) or 1)
        temperature = t0

        for eval_index in range(1, self.max_evals + 1):
            stats.evals_used = eval_index
            # Deterministic reheat keeps late evaluations exploratory
            # without making the schedule depend on the total budget.
            if eval_index % REHEAT_INTERVAL == 0:
                temperature = t0
            index = movable[rng.randrange(len(movable))]
            item = items[index]
            evicted: List[int] = []
            if in_cache[index]:
                delta_profit = -item.delta_r
                delta_slots = -item.slots
            else:
                delta_profit = item.delta_r
                delta_slots = item.slots
                if cur_slots + item.slots > capacity:
                    # Swap move: evict random cached items until it fits.
                    cached_now = [i for i in range(n) if in_cache[i]]
                    rng.shuffle(cached_now)
                    freed = 0
                    for victim in cached_now:
                        if cur_slots + item.slots - freed <= capacity:
                            break
                        evicted.append(victim)
                        freed += items[victim].slots
                        delta_profit -= items[victim].delta_r
                        delta_slots -= items[victim].slots
                    if cur_slots + delta_slots > capacity:
                        # Even a full eviction cannot fit it (shared slots
                        # with indifferent charge): infeasible, reject.
                        stats.moves_rejected += 1
                        temperature *= COOLING
                        continue
            accept = delta_profit >= 0 or rng.random() < math.exp(
                delta_profit / max(temperature, 1e-9)
            )
            temperature *= COOLING
            if not accept:
                stats.moves_rejected += 1
                continue
            stats.moves_accepted += 1
            for victim in evicted:
                in_cache[victim] = False
            in_cache[index] = not in_cache[index]
            cur_profit += delta_profit
            cur_slots += delta_slots
            assert cur_slots <= capacity  # feasibility invariant
            if self.record_candidates:
                self.last_candidates.append((cur_profit, cur_slots))
            if cur_profit > best_profit or (
                cur_profit == best_profit and cur_slots < best_slots
            ):
                best = list(in_cache)
                best_profit, best_slots = cur_profit, cur_slots
                if cur_profit > stats.best_profit:
                    stats.best_profit = cur_profit
                    stats.best_eval = eval_index
                    stats.trajectory.append((eval_index, cur_profit))

        result = _finalize(
            "anneal", problem, [items[i] for i in range(n) if best[i]]
        )
        result.search_stats = stats
        return result

    # ------------------------------------------------------------------
    # columnar engine (ProfitTable arrays; bit-identical to the object
    # walk: same RNG draw sequence, same accept/reject decisions, same
    # trajectory -- the speedup comes from scoring and membership scans,
    # never from shortcutting a random draw)
    # ------------------------------------------------------------------
    def _run_columnar(
        self,
        problem: AllocationProblem,
        seeded: AllocationResult,
        stats: SearchStats,
    ) -> AllocationResult:
        table = ProfitTable.of(problem)
        n = table.num_items
        capacity = problem.capacity_slots
        # Plain-int mirrors for the scalar per-move reads (list indexing
        # beats numpy item access); arrays for the batched scans below.
        slots_of = table.slots_list
        delta_of = table.delta_list
        in_cache = table.member_mask(seeded.cached)
        cur_profit = seeded.total_delta_r
        cur_slots = seeded.slots_used
        best = in_cache.copy()
        best_profit, best_slots = cur_profit, cur_slots
        stats.best_profit = best_profit
        stats.trajectory.append((0, best_profit))
        if self.record_candidates:
            self.last_candidates = [(cur_profit, cur_slots)]

        # Degenerate instances: nothing to move, or nothing ever fits.
        movable = table.movable_indices(capacity)
        if not movable or self.max_evals == 0:
            result = table.result_from_mask("anneal", problem, best)
            result.search_stats = stats
            return result

        rng = random.Random(self.seed)
        t0 = float(max(delta_of) or 1)
        temperature = t0

        for eval_index in range(1, self.max_evals + 1):
            stats.evals_used = eval_index
            if eval_index % REHEAT_INTERVAL == 0:
                temperature = t0
            index = movable[rng.randrange(len(movable))]
            evicted: List[int] = []
            if in_cache[index]:
                delta_profit = -delta_of[index]
                delta_slots = -slots_of[index]
            else:
                delta_profit = delta_of[index]
                delta_slots = slots_of[index]
                if cur_slots + delta_slots > capacity:
                    # Swap move: the victim scan is a vectorized
                    # membership extraction (ascending, like the object
                    # walk's list comprehension) followed by the *same*
                    # shuffle -- the full Fisher-Yates draw sequence is
                    # part of the trajectory identity and is preserved.
                    cached_now = np.flatnonzero(in_cache).tolist()
                    rng.shuffle(cached_now)
                    freed = 0
                    item_slots = slots_of[index]
                    for victim in cached_now:
                        if cur_slots + item_slots - freed <= capacity:
                            break
                        evicted.append(victim)
                        freed += slots_of[victim]
                        delta_profit -= delta_of[victim]
                        delta_slots -= slots_of[victim]
                    if cur_slots + delta_slots > capacity:
                        stats.moves_rejected += 1
                        temperature *= COOLING
                        continue
            accept = delta_profit >= 0 or rng.random() < math.exp(
                delta_profit / max(temperature, 1e-9)
            )
            temperature *= COOLING
            if not accept:
                stats.moves_rejected += 1
                continue
            stats.moves_accepted += 1
            for victim in evicted:
                in_cache[victim] = False
            in_cache[index] = not in_cache[index]
            cur_profit += delta_profit
            cur_slots += delta_slots
            assert cur_slots <= capacity  # feasibility invariant
            if self.record_candidates:
                self.last_candidates.append((cur_profit, cur_slots))
            if cur_profit > best_profit or (
                cur_profit == best_profit and cur_slots < best_slots
            ):
                best = in_cache.copy()
                best_profit, best_slots = cur_profit, cur_slots
                if cur_profit > stats.best_profit:
                    stats.best_profit = cur_profit
                    stats.best_eval = eval_index
                    stats.trajectory.append((eval_index, cur_profit))

        result = table.result_from_mask("anneal", problem, best)
        result.search_stats = stats
        return result


class AllocatorPortfolio:
    """Race several allocators on one instance, keep the best feasible.

    The deployment shape of the search extension: the paper's DP answers
    exactly where its model holds, the annealer answers where it bends,
    and the portfolio never has to know which regime it is in — it scores
    every member's result by ``(profit, -slots)`` (capacity-infeasible
    answers are discarded) and returns the winner re-labeled
    ``portfolio``, with a :class:`SearchStats` record naming the winning
    member.

    Args:
        max_evals: budget handed to the annealing member.
        seed: RNG seed handed to the annealing member.
        members: optional override, ``(name, allocator)`` pairs raced in
            order; ties prefer earlier members. Default: DP then anneal.
    """

    def __init__(
        self,
        max_evals: int = DEFAULT_SEARCH_BUDGET,
        seed: int = 0,
        members: Optional[Sequence[Tuple[str, Callable]]] = None,
    ):
        if max_evals < 0:
            raise ValueError(f"max_evals must be >= 0, got {max_evals}")
        self.max_evals = max_evals
        self.seed = seed
        self.members: List[Tuple[str, Callable]] = (
            list(members)
            if members is not None
            else [
                ("dp", dp_allocate),
                ("anneal", AnnealAllocator(max_evals=max_evals, seed=seed)),
            ]
        )
        if not self.members:
            raise ValueError("portfolio needs at least one member")

    def __repr__(self) -> str:
        names = ", ".join(name for name, _ in self.members)
        return f"AllocatorPortfolio([{names}], max_evals={self.max_evals})"

    def __call__(self, problem: AllocationProblem) -> AllocationResult:
        problem.validate()
        winner_name: Optional[str] = None
        winner: Optional[AllocationResult] = None
        for name, member in self.members:
            candidate = member(problem)
            if candidate.slots_used > problem.capacity_slots:
                continue  # infeasible member answer: never forwarded
            if winner is None or (
                candidate.total_delta_r,
                -candidate.slots_used,
            ) > (winner.total_delta_r, -winner.slots_used):
                winner_name, winner = name, candidate
        if winner is None:
            raise RuntimeError(
                "every portfolio member returned an infeasible allocation"
            )
        by_key = {item.key: item for item in problem.items}
        result = _finalize(
            "portfolio",
            problem,
            [by_key[key] for key in winner.cached if key in by_key],
        )
        inner = getattr(winner, "search_stats", None)
        stats = SearchStats(
            method="portfolio",
            seed=self.seed,
            budget=self.max_evals,
            evals_used=inner.evals_used if inner is not None else 0,
            moves_accepted=inner.moves_accepted if inner is not None else 0,
            moves_rejected=inner.moves_rejected if inner is not None else 0,
            seed_profit=(
                inner.seed_profit
                if inner is not None
                else result.total_delta_r
            ),
            seed_method=inner.seed_method if inner is not None else "dp",
            best_profit=result.total_delta_r,
            best_eval=inner.best_eval if inner is not None else 0,
            trajectory=list(inner.trajectory) if inner is not None else [],
            winner=winner_name,
        )
        result.search_stats = stats
        return result


def register_search() -> None:
    """Expose the search allocators under their registry names.

    Registered as *instances* (plain callables), so the resolver and the
    differential oracle invoke them like any ``problem -> result``
    allocator; budgets are customized through the ``anneal:<evals>`` /
    ``portfolio:<evals>`` spec syntax, which constructs fresh instances.
    """
    ALLOCATORS.setdefault("anneal", AnnealAllocator())
    ALLOCATORS.setdefault("portfolio", AllocatorPortfolio())


register_search()
