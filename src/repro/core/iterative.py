"""Critical-path-aware iterative allocation (extension, not in the paper).

The paper's dynamic program maximizes the *sum* of per-edge retiming
reductions ``Σ ΔR`` under the cache capacity. That objective is a proxy:
the prologue is ``R_max * p``, and ``R_max`` is the longest δ-weighted path
through the graph, so caching edges *off* the critical path buys nothing.
(This is the soundness gap in the paper's optimality claim: a knapsack
over per-edge profits does not, in general, minimize the maximum path
weight.)

:func:`iterative_allocate` targets ``R_max`` directly:

1. compute the current δ-weighted longest path (with every undecided edge
   priced at its eDRAM delta),
2. move the cheapest not-yet-cached positive-``ΔR`` edge on that path into
   the cache (if it fits),
3. repeat until the critical path contains no improvable edge or the
   capacity is exhausted.

The ablation experiment compares it against the paper's DP; it never
produces a larger ``R_max`` for the same capacity, and often a smaller
one when capacity is scarce.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.allocation import (
    ALLOCATORS,
    AllocationItem,
    AllocationProblem,
    AllocationResult,
    AllocatorFactory,
    _finalize,
)
from repro.core.retiming import EdgeTiming
from repro.graph.taskgraph import TaskGraph

EdgeKey = Tuple[int, int]


def _longest_path_edges(
    graph: TaskGraph, deltas: Mapping[EdgeKey, int]
) -> Tuple[int, List[EdgeKey]]:
    """Max δ-weighted path value (``R_max``) and one path achieving it."""
    best: Dict[int, int] = {}
    best_edge: Dict[int, Optional[EdgeKey]] = {}
    order = graph.topological_order()
    for op_id in reversed(order):
        best[op_id] = 0
        best_edge[op_id] = None
        for edge in graph.out_edges(op_id):
            value = best[edge.consumer] + deltas[edge.key]
            if value > best[op_id]:
                best[op_id] = value
                best_edge[op_id] = edge.key
    if not best:
        return 0, []
    start = max(best, key=lambda i: (best[i], -i))
    r_max = best[start]
    path: List[EdgeKey] = []
    node = start
    while best_edge[node] is not None:
        key = best_edge[node]
        path.append(key)
        node = key[1]
    return r_max, path


class IterativeAllocator(AllocatorFactory):
    """Callable allocator with access to the graph's path structure.

    Unlike the knapsack allocators, minimizing ``R_max`` needs the graph
    topology, so this allocator is constructed per run by the pipeline
    (see :meth:`ParaConv.run` with ``allocator_name="iterative"`` -- the
    registry entry is the class itself, an explicit
    :class:`~repro.core.allocation.AllocatorFactory` resolved by the
    pipeline with the current graph and timings). An already-constructed
    *instance* passed as an allocator is rebound to the run's graph via
    :meth:`build` (preserving ``max_rounds``), never silently reused
    across graphs.
    """

    def __init__(
        self,
        graph: TaskGraph,
        timings: Mapping[EdgeKey, EdgeTiming],
        max_rounds: int = 100_000,
    ):
        self.graph = graph
        self.timings = timings
        self.max_rounds = max_rounds

    def build(
        self, graph: TaskGraph, timings: Mapping[EdgeKey, EdgeTiming]
    ) -> "IterativeAllocator":
        """Rebind this allocator to the current run's graph and analysis."""
        return IterativeAllocator(graph, timings, max_rounds=self.max_rounds)

    def __call__(self, problem: AllocationProblem) -> AllocationResult:
        problem.validate()
        capacity = problem.capacity_slots
        items_by_key: Dict[EdgeKey, AllocationItem] = {
            item.key: item for item in problem.items
        }
        cached: Set[EdgeKey] = set()
        free = capacity
        deltas: Dict[EdgeKey, int] = {
            key: timing.delta_edram for key, timing in self.timings.items()
        }

        for _round in range(self.max_rounds):
            _r_max, path = _longest_path_edges(self.graph, deltas)
            # Improvable edges on the critical path: positive ΔR, not yet
            # cached, and small enough to fit the remaining capacity.
            candidates = [
                items_by_key[key]
                for key in path
                if key in items_by_key and key not in cached
                and items_by_key[key].slots <= free
            ]
            if not candidates:
                break
            # Cheapest slot cost first: spend capacity where it is dense.
            pick = min(candidates, key=lambda item: (item.slots, item.key))
            cached.add(pick.key)
            free -= pick.slots
            deltas[pick.key] = self.timings[pick.key].delta_cache
        else:
            raise RuntimeError("iterative allocator did not converge")

        chosen = [item for item in problem.items if item.key in cached]
        result = _finalize("iterative", problem, chosen)
        return result


def register_iterative() -> None:
    """Expose the factory under the "iterative" registry name.

    The registry stores the class itself — an explicit
    :class:`~repro.core.allocation.AllocatorFactory` subclass, which the
    pipeline's ``dp-allocate`` pass resolves with the run's (graph,
    timings) via :func:`repro.core.allocation.resolve_allocator`.
    """
    ALLOCATORS.setdefault("iterative", IterativeAllocator)


register_iterative()
