"""Schedulers: compacted steady-state kernel and dependency-honoring list.

Two schedulers cover the paper's two regimes:

* :func:`compact_kernel_schedule` -- after retiming, intra-iteration
  dependencies are gone, so the kernel is a pure load-balancing problem:
  every operation of one iteration is packed onto the PE array as tightly
  as possible (Figure 3(b): "all convolution operations in each iteration
  are compacted to achieve the minimum execution time"). LPT list
  scheduling gives the period ``p``.
* :func:`list_schedule` -- the classic resource-constrained list scheduler
  honoring intra-iteration dependencies and per-edge transfer latencies;
  this is what the un-retimed baseline executes (Figure 3(a)) and what
  SPARTA builds on.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

from repro.core.schedule import KernelSchedule, PlacedOp, ScheduleError
from repro.graph.taskgraph import IntermediateResult, TaskGraph

EdgeLatency = Callable[[IntermediateResult], int]


def load_balance_bound(graph: TaskGraph, num_pes: int) -> int:
    """Lower bound on any kernel period: ``max(ceil(Σc_i / P), max c_i)``."""
    if num_pes < 1:
        raise ScheduleError("num_pes must be >= 1")
    if graph.num_vertices == 0:
        return 0
    return max(
        math.ceil(graph.total_work() / num_pes),
        graph.max_execution_time(),
    )


def compact_kernel_schedule(
    graph: TaskGraph,
    num_pes: int,
    order: str = "topological",
    levels: Optional[Dict[int, int]] = None,
) -> KernelSchedule:
    """Pack one dependency-free iteration onto ``num_pes`` PEs.

    After retiming, intra-iteration edges impose no ordering, so any greedy
    list assignment to the earliest-available PE is feasible; the makespan
    is the steady-state period ``p``.

    Packing order still matters for *retiming depth*: with
    ``order="topological"`` (default), operations are packed by ASAP level,
    so producers land before their consumers within the window and most
    cache-resident edges need no retiming at all -- eDRAM latency becomes
    the dominant cause of prologue iterations, which is the effect the
    paper's allocation problem optimizes. ``order="lpt"``
    (longest-processing-time first) packs tighter on pathological execution
    -time mixes and is kept for ablation.

    ``levels`` may carry precomputed ASAP levels (width-invariant) so the
    width search pays the level analysis once per graph instead of once
    per candidate width; when omitted it is computed here, identically.
    """
    if num_pes < 1:
        raise ScheduleError("num_pes must be >= 1")
    if order == "topological":
        if levels is None:
            from repro.graph.analysis import asap_levels

            levels = asap_levels(graph)
        ordered = sorted(
            graph.operations(),
            key=lambda op: (levels[op.op_id], -op.execution_time, op.op_id),
        )
    elif order == "lpt":
        ordered = sorted(
            graph.operations(), key=lambda op: (-op.execution_time, op.op_id)
        )
    else:
        raise ScheduleError(f"unknown packing order {order!r}")
    free_at = [0] * num_pes
    placements: Dict[int, PlacedOp] = {}
    for op in ordered:
        pe = min(range(num_pes), key=lambda k: (free_at[k], k))
        start = free_at[pe]
        finish = start + op.execution_time
        free_at[pe] = finish
        placements[op.op_id] = PlacedOp(op.op_id, pe, start, finish)
    period = max(free_at) if placements else 0
    return KernelSchedule(period=period, placements=placements)


#: Smallest PE group an iteration may be mapped onto. Serializing a whole
#: iteration onto one PE abandons intra-iteration parallelism (and with it
#: the FIFO-streaming execution model both schemes assume), so replication
#: never shrinks a group below two PEs on multi-PE arrays.
MIN_GROUP_WIDTH = 2


def candidate_group_widths(num_pes: int) -> List[int]:
    """Distinct PE-group widths that tile the array without stranding PEs.

    Candidates are ``num_pes // J`` for ``J = 1, 2, ...`` down to
    :data:`MIN_GROUP_WIDTH` (or 1 when the array itself is smaller),
    deduplicated, widest first. Both Para-CONV and the SPARTA baseline
    choose their operating point from this same set, so comparisons isolate
    scheduling quality rather than array-partitioning policy.
    """
    if num_pes < 1:
        raise ScheduleError("num_pes must be >= 1")
    floor = min(MIN_GROUP_WIDTH, num_pes)
    widths: List[int] = []
    for groups in range(1, num_pes + 1):
        width = num_pes // groups
        if width < floor:
            break
        if not widths or widths[-1] != width:
            widths.append(width)
    return widths


def choose_group_width(
    graph: TaskGraph, num_pes: int, utilization_target: float = 0.75
) -> int:
    """Widest PE group one iteration can keep busy (paper Section 2.3).

    When the array is wider than one iteration's parallelism, iterations
    are replicated across PE groups (the motivational example maps two
    iterations onto two PE pairs). To avoid stranding PEs, candidate
    widths are ``num_pes // J`` for group counts ``J = 1, 2, ...``; the
    first (widest) candidate whose compacted kernel keeps at least
    ``utilization_target`` of the group busy wins -- intra-iteration
    parallelism is preferred, extra groups are added only once a single
    iteration cannot fill the array. Falls back to the best-utilization
    candidate when no width meets the target (tiny graphs on wide arrays).

    Both Para-CONV and the SPARTA baseline use this same policy, so the
    comparison isolates scheduling quality, not array partitioning.
    """
    if not 0 < utilization_target <= 1:
        raise ScheduleError("utilization_target must be in (0, 1]")
    if num_pes < 1:
        raise ScheduleError("num_pes must be >= 1")
    total = graph.total_work()
    max_exec = graph.max_execution_time()
    best_width, best_util = num_pes, -1.0
    seen = set()
    for groups in range(1, num_pes + 1):
        width = num_pes // groups
        if width in seen:
            continue
        seen.add(width)
        period = max(math.ceil(total / width), max_exec)
        utilization = total / (width * period)
        if utilization >= utilization_target:
            return width
        if utilization > best_util:
            best_width, best_util = width, utilization
    return best_width


def list_schedule(
    graph: TaskGraph,
    num_pes: int,
    edge_latency: Optional[EdgeLatency] = None,
    priority: Optional[Dict[int, int]] = None,
) -> KernelSchedule:
    """Dependency-honoring list schedule of one iteration.

    Operations become ready when all predecessors have finished *and* their
    intermediate results have arrived (``finish(pred) + latency(edge)``).
    Ready operations are dispatched by descending priority (default:
    critical-path distance to a sink), then ``op_id``, each to the PE that
    can start it earliest.

    The returned :class:`KernelSchedule` has ``period`` equal to the
    makespan including transfer latencies -- the baseline's per-iteration
    execution time ``L``.
    """
    if num_pes < 1:
        raise ScheduleError("num_pes must be >= 1")
    latency = edge_latency or (lambda _e: 0)
    prio = priority or downward_rank(graph, latency)

    remaining_preds = {
        op.op_id: graph.in_degree(op.op_id) for op in graph.operations()
    }
    data_ready: Dict[int, int] = {op.op_id: 0 for op in graph.operations()}
    ready = [op_id for op_id, n in remaining_preds.items() if n == 0]
    free_at = [0] * num_pes
    placements: Dict[int, PlacedOp] = {}

    while ready:
        ready.sort(key=lambda i: (-prio[i], i))
        op_id = ready.pop(0)
        op = graph.operation(op_id)
        earliest = data_ready[op_id]
        pe = min(range(num_pes), key=lambda k: (max(free_at[k], earliest), k))
        start = max(free_at[pe], earliest)
        finish = start + op.execution_time
        free_at[pe] = finish
        placements[op_id] = PlacedOp(op_id, pe, start, finish)
        for edge in graph.out_edges(op_id):
            succ = edge.consumer
            data_ready[succ] = max(data_ready[succ], finish + latency(edge))
            remaining_preds[succ] -= 1
            if remaining_preds[succ] == 0:
                ready.append(succ)

    if len(placements) != graph.num_vertices:
        raise ScheduleError(
            "list scheduler stalled; the graph contains a cycle"
        )
    period = max((p.finish for p in placements.values()), default=0)
    return KernelSchedule(period=period, placements=placements)


def compact_kernel_schedule_heterogeneous(
    graph: TaskGraph, array, order: str = "topological"
) -> KernelSchedule:
    """Dependency-free packing onto a heterogeneous PE array.

    Earliest-finish-time greedy: each operation (in the same orders as
    :func:`compact_kernel_schedule`) goes to the PE where it *finishes*
    first given that PE's speed, which naturally keeps long operations on
    fast PEs. ``array`` is a
    :class:`repro.pim.heterogeneous.HeterogeneousArray`.
    """
    num_pes = array.config.num_pes
    if num_pes < 1:
        raise ScheduleError("array needs >= 1 PE")
    if order == "topological":
        from repro.graph.analysis import asap_levels

        levels = asap_levels(graph)
        ordered = sorted(
            graph.operations(),
            key=lambda op: (levels[op.op_id], -op.execution_time, op.op_id),
        )
    elif order == "lpt":
        ordered = sorted(
            graph.operations(), key=lambda op: (-op.execution_time, op.op_id)
        )
    else:
        raise ScheduleError(f"unknown packing order {order!r}")
    free_at = [0] * num_pes
    placements: Dict[int, PlacedOp] = {}
    for op in ordered:
        best_pe, best_finish, best_start = None, None, None
        for pe in range(num_pes):
            duration = array.effective_time(op.execution_time, pe)
            start = free_at[pe]
            finish = start + duration
            if best_finish is None or finish < best_finish:
                best_pe, best_finish, best_start = pe, finish, start
        free_at[best_pe] = best_finish
        placements[op.op_id] = PlacedOp(
            op.op_id, best_pe, best_start, best_finish
        )
    period = max(free_at) if placements else 0
    return KernelSchedule(period=period, placements=placements)


def list_schedule_heterogeneous(
    graph: TaskGraph,
    array,
    edge_latency: Optional[EdgeLatency] = None,
    priority: Optional[Dict[int, int]] = None,
    extra_occupancy: Optional[Dict[int, int]] = None,
) -> KernelSchedule:
    """Dependency-honoring list schedule on a heterogeneous array (EFT).

    Like :func:`list_schedule`, but each ready operation is dispatched to
    the PE where it finishes earliest under that PE's speed -- the HEFT
    dispatch rule, which is what a heterogeneity-aware runtime allocator
    (SPARTA's home turf) would do. ``extra_occupancy`` adds per-operation
    time that does *not* scale with PE speed (memory stalls).
    """
    num_pes = array.config.num_pes
    if num_pes < 1:
        raise ScheduleError("array needs >= 1 PE")
    latency = edge_latency or (lambda _e: 0)
    prio = priority or downward_rank(graph, latency)

    remaining_preds = {
        op.op_id: graph.in_degree(op.op_id) for op in graph.operations()
    }
    data_ready: Dict[int, int] = {op.op_id: 0 for op in graph.operations()}
    ready = [op_id for op_id, n in remaining_preds.items() if n == 0]
    free_at = [0] * num_pes
    placements: Dict[int, PlacedOp] = {}

    while ready:
        ready.sort(key=lambda i: (-prio[i], i))
        op_id = ready.pop(0)
        op = graph.operation(op_id)
        earliest = data_ready[op_id]
        stall = (extra_occupancy or {}).get(op_id, 0)
        best = None
        for pe in range(num_pes):
            duration = array.effective_time(op.execution_time, pe) + stall
            start = max(free_at[pe], earliest)
            finish = start + duration
            if best is None or finish < best[0]:
                best = (finish, pe, start)
        finish, pe, start = best
        free_at[pe] = finish
        placements[op_id] = PlacedOp(op_id, pe, start, finish)
        for edge in graph.out_edges(op_id):
            succ = edge.consumer
            data_ready[succ] = max(data_ready[succ], finish + latency(edge))
            remaining_preds[succ] -= 1
            if remaining_preds[succ] == 0:
                ready.append(succ)

    if len(placements) != graph.num_vertices:
        raise ScheduleError("list scheduler stalled; the graph contains a cycle")
    period = max((p.finish for p in placements.values()), default=0)
    return KernelSchedule(period=period, placements=placements)


def downward_rank(graph: TaskGraph, edge_latency: EdgeLatency) -> Dict[int, int]:
    """Critical-path-to-sink priority for list scheduling (HEFT-style).

    ``rank(i) = c_i + max over out-edges (latency + rank(consumer))``.
    """
    rank: Dict[int, int] = {}
    for op_id in reversed(graph.topological_order()):
        op = graph.operation(op_id)
        best = 0
        for edge in graph.out_edges(op_id):
            best = max(best, edge_latency(edge) + rank[edge.consumer])
        rank[op_id] = op.execution_time + best
    return rank


def effective_parallel_width(
    graph: TaskGraph, max_pes: int, edge_latency: Optional[EdgeLatency] = None
) -> int:
    """Smallest PE count at which the list-schedule makespan stops improving.

    A baseline that maps one iteration onto the whole array wastes PEs once
    the graph's parallelism saturates; this probe finds the useful width so
    the baseline can instead replicate iterations across PE groups (as in
    the motivational example, where two iterations run concurrently on two
    PE pairs).
    """
    if max_pes < 1:
        raise ScheduleError("max_pes must be >= 1")
    best_len = None
    best_width = 1
    width = 1
    while width <= max_pes:
        length = list_schedule(graph, width, edge_latency).period
        if best_len is None or length < best_len:
            best_len = length
            best_width = width
        width *= 2
    return best_width
