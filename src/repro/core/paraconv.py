"""The Para-CONV pipeline (paper Section 3), as a pass pipeline.

End-to-end flow, mirroring Section 3.3.3's construction:

1. pick the PE group width: when the array is wider than one iteration's
   useful parallelism, whole iterations are replicated across groups (the
   motivational example runs two iterations on two PE pairs);
2. build the *objective schedule* -- the compacted steady-state kernel on a
   group (known a-priori, load-balance bound);
3. analyze every intermediate result's required retiming under cache and
   eDRAM placement (Section 3.2), deriving ``ΔR(m)``;
4. send placement-indifferent results (``ΔR = 0``) to eDRAM;
5. run the dynamic program ``B[S, m]`` over the competing results and
   reconstruct the optimal cache allocation (capacity shared across the
   concurrently executing groups);
6. propagate the per-edge retiming requirements into the minimal legal
   vertex retiming, yielding ``R_max``, the prologue and the full periodic
   schedule.

Since PR 3 the stages are *named compiler passes* executed by
:class:`repro.compiler.PassManager` over an explicit
:class:`repro.compiler.CompileContext` — see :mod:`repro.compiler.passes`
for the stage table. :class:`ParaConv` is the front-end: it turns its
knobs into a :class:`repro.compiler.PipelineConfig`, hoists width-invariant
work (graph validation, ASAP levels) out of the width search, prunes
candidate widths whose admissible lower bound (load-balance and
transfer-critical-path terms) cannot beat the incumbent,
and attaches a :class:`repro.compiler.CompileStats` breakdown to every
result (surfaced by ``python -m repro … --explain`` and the serving
runtime).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence

from repro.compiler.context import CompileContext
from repro.compiler.manager import InvariantHook, PassManager
from repro.compiler.passes import ValidateGraphPass
from repro.compiler.pipeline import (
    CompileStats,
    PipelineConfig,
    transfer_critical_path,
    width_lower_bound,
)
from repro.core.allocation import (
    AllocationProblem,
    AllocationResult,
    allocator_from_spec,
    dp_allocate,
)
from repro.core.cases import RetimingCase, case_census
from repro.core.schedule import PeriodicSchedule, ScheduleError
from repro.core.scheduler import candidate_group_widths, load_balance_bound
from repro.graph.taskgraph import TaskGraph
from repro.pim.config import PimConfig
from repro.pim.memory import Placement

Allocator = Callable[[AllocationProblem], AllocationResult]


@dataclass
class ParaConvResult:
    """Everything Para-CONV produces for one (graph, machine) pair.

    ``group_width`` PEs execute one iteration's kernel; ``num_groups``
    such groups run interleaved iterations concurrently, sharing the
    aggregate on-chip cache equally. ``compile_stats`` (when present)
    records where the compile time went — per-pass wall seconds and the
    width search's explored/pruned candidates; it is observability
    metadata only and never serialized into the plan payload.
    """

    graph: TaskGraph
    config: PimConfig
    schedule: PeriodicSchedule
    allocation: AllocationResult
    case_histogram: Dict[RetimingCase, int]
    group_width: int
    num_groups: int
    compile_stats: Optional[CompileStats] = field(
        default=None, compare=False, repr=False
    )

    # ------------------------------------------------------------------
    # paper metrics
    # ------------------------------------------------------------------
    @property
    def period(self) -> int:
        """Steady-state execution time of each iteration (Figure 5)."""
        return self.schedule.period

    @property
    def max_retiming(self) -> int:
        """``R_max`` (Table 2)."""
        return self.schedule.max_retiming

    @property
    def prologue_time(self) -> int:
        """``R_max * p`` (Section 3.2)."""
        return self.schedule.prologue_time

    @property
    def num_cached(self) -> int:
        """IRs in on-chip cache per group (the DP's selection)."""
        return self.allocation.num_cached

    @property
    def num_cached_total(self) -> int:
        """IRs resident in cache across the whole array (Figure 6)."""
        return self.allocation.num_cached * self.num_groups

    def total_time(self, iterations: Optional[int] = None) -> int:
        """Prologue + N iterations spread over the groups (Table 1)."""
        n = self.config.iterations if iterations is None else iterations
        if n < 1:
            raise ScheduleError("iterations must be >= 1")
        return self.prologue_time + math.ceil(n / self.num_groups) * self.period

    def offchip_bytes_per_iteration(self) -> int:
        """Bytes fetched from eDRAM each iteration (the minimized penalty)."""
        return sum(
            edge.size_bytes
            for edge in self.graph.edges()
            if self.schedule.placements[edge.key] is Placement.EDRAM
        )

    def throughput(self, iterations: Optional[int] = None) -> float:
        """Iterations completed per time unit over the whole run."""
        n = self.config.iterations if iterations is None else iterations
        return n / self.total_time(n)

    def summary(self) -> str:
        """Human-readable one-paragraph report."""
        lines = [
            f"Para-CONV on {self.graph.name!r} ({self.graph.num_vertices} ops, "
            f"{self.graph.num_edges} intermediate results)",
            f"  machine        : {self.config.describe()}",
            f"  groups         : {self.num_groups} x {self.group_width} PEs",
            f"  period p       : {self.period} time units "
            f"(load-balance bound "
            f"{load_balance_bound(self.graph, self.group_width)})",
            f"  R_max          : {self.max_retiming} "
            f"(prologue {self.prologue_time} units)",
            f"  cached IRs     : {self.num_cached}/{self.graph.num_edges} "
            f"per group ({self.allocation.slots_used}/"
            f"{self.allocation.capacity_slots} slots)",
            f"  total time     : {self.total_time()} units for "
            f"{self.config.iterations} iterations",
            f"  off-chip/iter  : {self.offchip_bytes_per_iteration()} bytes",
        ]
        return "\n".join(lines)

    def explain(self) -> str:
        """Pass-pipeline and width-search breakdown (``--explain``)."""
        if self.compile_stats is None:
            return "(no compile stats recorded for this plan)"
        return self.compile_stats.explain()


class ParaConv:
    """Task-level data allocation framework for convolutional connections.

    A thin front-end over the :mod:`repro.compiler` pass pipeline: the
    constructor knobs become a :class:`~repro.compiler.PipelineConfig`, so
    allocator choice, kernel packing order and the liveness mode are
    pipeline configuration rather than branches in a monolithic ``run``.

    Args:
        config: machine description (PE count, cache capacity, eDRAM ratio).
        allocator: cache-allocation strategy; the paper's dynamic program by
            default, swappable for the ablation baselines in
            :mod:`repro.core.allocation` (or by registry name). May be a
            plain callable or an
            :class:`~repro.core.allocation.AllocatorFactory`.
        kernel_order: packing order of the compacted kernel
            ("topological" or "lpt"; ablation knob).
        liveness_aware: weight each cache candidate by its concurrent
            live-instance count (delta_cache + 1) so steady-state peak
            occupancy respects the capacity -- fixes the transient-spill
            gap in the paper's accounting (see repro.core.liveness).
        validate: run the full semantic validator on the produced schedule
            (cheap; disable only in tight parameter sweeps).
        prune_widths: apply the lower-bound pruning rule in the width
            search — the max of the load-balance and
            transfer-critical-path admissible bounds (see
            :func:`repro.compiler.width_lower_bound`). Pruning never
            changes the chosen plan — it only skips candidates that
            provably cannot win — so it is on by default; disable it to
            measure the exhaustive-search baseline.
        invariant_hooks: optional per-pass invariant hooks (pass name ->
            checks) forwarded to the :class:`~repro.compiler.PassManager`;
            see :func:`repro.verify.hooks.compile_invariant_hooks`.
    """

    def __init__(
        self,
        config: PimConfig,
        allocator: Optional[Allocator] = None,
        allocator_name: Optional[str] = None,
        kernel_order: str = "topological",
        liveness_aware: bool = False,
        validate: bool = True,
        prune_widths: bool = True,
        invariant_hooks: Optional[Mapping[str, Sequence[InvariantHook]]] = None,
    ):
        if allocator is not None and allocator_name is not None:
            raise ValueError("pass either allocator or allocator_name, not both")
        if allocator_name is not None:
            # Accepts budgeted specs too (``anneal:5000``); unknown names
            # raise UnknownAllocatorError (a ValueError) listing the
            # registry, mirroring the --allocator CLI choices.
            allocator = allocator_from_spec(allocator_name)
        self.config = config
        self.allocator = allocator if allocator is not None else dp_allocate
        self.kernel_order = kernel_order
        self.liveness_aware = liveness_aware
        self.validate = validate
        self.prune_widths = prune_widths
        self.invariant_hooks = invariant_hooks
        self.pipeline = PipelineConfig(
            allocator=self.allocator,
            kernel_order=kernel_order,
            liveness_aware=liveness_aware,
            validate=validate,
        )

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def run(self, graph: TaskGraph) -> ParaConvResult:
        """Execute the full pipeline, maximizing application throughput.

        The paper's objective is "the maximum application throughput while
        minimizing the overall off-chip fetching": the pipeline is
        evaluated at every candidate PE-group width (one iteration per
        group, iterations replicated across groups) and the assignment
        with the smallest total execution time over the configured
        iteration count wins; ties prefer wider groups (lower latency and
        shorter prologue) via the explicit ``(total_time, -width)`` key,
        independent of candidate enumeration order.

        Width-invariant work (graph validation, ASAP levels, work sums,
        the transfer critical path per period floor) is hoisted out of
        the loop, and candidates whose lower bound — the max of the
        load-balance and transfer-critical-path terms (see
        :func:`repro.compiler.width_lower_bound`) — cannot beat the
        incumbent best are pruned without compiling, both measurable in
        the attached ``compile_stats`` and both guaranteed not to change
        the produced plan.
        """
        started = time.perf_counter()
        stats = CompileStats(pruning_enabled=self.prune_widths)

        base = CompileContext(graph=graph, config=self.config)
        PassManager(
            [ValidateGraphPass()], hooks=self.invariant_hooks
        ).run(base, stats)
        manager = self.pipeline.build_manager(
            full=False, hooks=self.invariant_hooks
        )

        work = base.shared_total_work()
        cmax = base.shared_max_execution_time()
        iterations = self.config.iterations
        # transfer_critical_path depends on the candidate only through its
        # load-balance period floor; distinct widths often share a floor
        # (the c_max clamp), so memoize per floor in the shared store.
        cp_memo: Dict[int, int] = base.shared.setdefault("cp_transfer", {})

        def cp_for(period_floor: int) -> int:
            if period_floor not in cp_memo:
                cp_memo[period_floor] = transfer_critical_path(
                    graph, self.config, period_floor
                )
            return cp_memo[period_floor]

        best: Optional[ParaConvResult] = None
        best_key = None
        for width in candidate_group_widths(self.config.num_pes):
            num_groups = max(1, self.config.num_pes // width)
            if self.prune_widths and best is not None:
                floor = max(math.ceil(work / width), cmax)
                bound = width_lower_bound(
                    graph,
                    width,
                    num_groups,
                    iterations,
                    total_work=work,
                    max_execution_time=cmax,
                    cp_transfer=cp_for(floor),
                )
                # The incumbent is wider (candidates are enumerated widest
                # first) and ties prefer wider groups, so a candidate whose
                # lower bound merely *equals* the incumbent's total time
                # cannot win either.
                if bound >= best.total_time():
                    stats.record_pruned(width)
                    continue
            width_started = time.perf_counter()
            ctx = base.fork_for_width(width)
            manager.run(ctx, stats)
            result = self._assemble(ctx)
            stats.record_width(width, time.perf_counter() - width_started)
            key = (result.total_time(), -width)
            if best_key is None or key < best_key:
                best, best_key = result, key
        assert best is not None
        stats.best_width = best.group_width
        stats.record_search(getattr(best.allocation, "search_stats", None))
        stats.total_seconds = time.perf_counter() - started
        best.compile_stats = stats
        return best

    def run_at_width(self, graph: TaskGraph, width: int) -> ParaConvResult:
        """Execute the pipeline with a fixed PE-group width."""
        started = time.perf_counter()
        stats = CompileStats(pruning_enabled=False)
        ctx = CompileContext(graph=graph, config=self.config, width=width)
        manager = self.pipeline.build_manager(
            full=True, hooks=self.invariant_hooks
        )
        width_started = time.perf_counter()
        manager.run(ctx, stats)
        result = self._assemble(ctx)
        stats.record_width(width, time.perf_counter() - width_started)
        stats.best_width = width
        stats.record_search(getattr(result.allocation, "search_stats", None))
        stats.total_seconds = time.perf_counter() - started
        result.compile_stats = stats
        return result

    # ------------------------------------------------------------------
    # partial-pipeline API (shared-prefix compilation)
    # ------------------------------------------------------------------
    def analysis_context(self, graph: TaskGraph, width: int) -> CompileContext:
        """Run the allocator-independent prefix once, return the context.

        Executes ``validate-graph → compact-kernel → analyze-edges →
        zero-dr-prepass`` at a fixed width. The returned context can be
        :meth:`~repro.compiler.CompileContext.fork`-ed once per allocator
        and completed with :meth:`run_from_context`, so sweeps that compare
        allocation policies (the ablation harness) share the kernel and
        the edge analysis instead of recomputing them per strategy.
        """
        ctx = CompileContext(graph=graph, config=self.config, width=width)
        prefix = [p for p in self.pipeline.build_passes()
                  if p.name in ("validate-graph", "compact-kernel",
                                "analyze-edges", "zero-dr-prepass")]
        PassManager(prefix, hooks=self.invariant_hooks).run(ctx)
        return ctx

    def run_from_context(self, ctx: CompileContext) -> ParaConvResult:
        """Complete a prefix context (see :meth:`analysis_context`)."""
        suffix = [p for p in self.pipeline.build_width_passes()
                  if p.name not in ("compact-kernel", "analyze-edges",
                                    "zero-dr-prepass")]
        manager = PassManager(
            suffix,
            initial_artifacts=("graph-valid", "kernel", "timings", "problem"),
            hooks=self.invariant_hooks,
        )
        manager.run(ctx)
        return self._assemble(ctx)

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def _assemble(self, ctx: CompileContext) -> ParaConvResult:
        """Build the result record from a fully-compiled context."""
        return ParaConvResult(
            graph=ctx.graph,
            config=ctx.config,
            schedule=ctx.get("schedule"),
            allocation=ctx.get("allocation"),
            case_histogram=case_census(ctx.get("timings")),
            group_width=ctx.width,
            num_groups=ctx.num_groups,
        )
