"""The Para-CONV pipeline (paper Section 3).

End-to-end flow, mirroring Section 3.3.3's construction:

1. pick the PE group width: when the array is wider than one iteration's
   useful parallelism, whole iterations are replicated across groups (the
   motivational example runs two iterations on two PE pairs);
2. build the *objective schedule* -- the compacted steady-state kernel on a
   group (known a-priori, load-balance bound);
3. analyze every intermediate result's required retiming under cache and
   eDRAM placement (Section 3.2), deriving ``ΔR(m)``;
4. send placement-indifferent results (``ΔR = 0``) to eDRAM;
5. run the dynamic program ``B[S, m]`` over the competing results and
   reconstruct the optimal cache allocation (capacity shared across the
   concurrently executing groups);
6. propagate the per-edge retiming requirements into the minimal legal
   vertex retiming, yielding ``R_max``, the prologue and the full periodic
   schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.allocation import (
    ALLOCATORS,
    AllocationProblem,
    AllocationResult,
    dp_allocate,
)
from repro.core.cases import RetimingCase, case_census
from repro.core.retiming import analyze_edges, solve_retiming
from repro.core.schedule import (
    PeriodicSchedule,
    ScheduleError,
    validate_kernel,
    validate_periodic_schedule,
)
from repro.core.scheduler import (
    candidate_group_widths,
    compact_kernel_schedule,
    load_balance_bound,
)
from repro.graph.taskgraph import TaskGraph
from repro.pim.config import PimConfig
from repro.pim.memory import Placement

Allocator = Callable[[AllocationProblem], AllocationResult]


@dataclass
class ParaConvResult:
    """Everything Para-CONV produces for one (graph, machine) pair.

    ``group_width`` PEs execute one iteration's kernel; ``num_groups``
    such groups run interleaved iterations concurrently, sharing the
    aggregate on-chip cache equally.
    """

    graph: TaskGraph
    config: PimConfig
    schedule: PeriodicSchedule
    allocation: AllocationResult
    case_histogram: Dict[RetimingCase, int]
    group_width: int
    num_groups: int

    # ------------------------------------------------------------------
    # paper metrics
    # ------------------------------------------------------------------
    @property
    def period(self) -> int:
        """Steady-state execution time of each iteration (Figure 5)."""
        return self.schedule.period

    @property
    def max_retiming(self) -> int:
        """``R_max`` (Table 2)."""
        return self.schedule.max_retiming

    @property
    def prologue_time(self) -> int:
        """``R_max * p`` (Section 3.2)."""
        return self.schedule.prologue_time

    @property
    def num_cached(self) -> int:
        """IRs in on-chip cache per group (the DP's selection)."""
        return self.allocation.num_cached

    @property
    def num_cached_total(self) -> int:
        """IRs resident in cache across the whole array (Figure 6)."""
        return self.allocation.num_cached * self.num_groups

    def total_time(self, iterations: Optional[int] = None) -> int:
        """Prologue + N iterations spread over the groups (Table 1)."""
        n = self.config.iterations if iterations is None else iterations
        if n < 1:
            raise ScheduleError("iterations must be >= 1")
        return self.prologue_time + math.ceil(n / self.num_groups) * self.period

    def offchip_bytes_per_iteration(self) -> int:
        """Bytes fetched from eDRAM each iteration (the minimized penalty)."""
        return sum(
            edge.size_bytes
            for edge in self.graph.edges()
            if self.schedule.placements[edge.key] is Placement.EDRAM
        )

    def throughput(self, iterations: Optional[int] = None) -> float:
        """Iterations completed per time unit over the whole run."""
        n = self.config.iterations if iterations is None else iterations
        return n / self.total_time(n)

    def summary(self) -> str:
        """Human-readable one-paragraph report."""
        lines = [
            f"Para-CONV on {self.graph.name!r} ({self.graph.num_vertices} ops, "
            f"{self.graph.num_edges} intermediate results)",
            f"  machine        : {self.config.describe()}",
            f"  groups         : {self.num_groups} x {self.group_width} PEs",
            f"  period p       : {self.period} time units "
            f"(load-balance bound "
            f"{load_balance_bound(self.graph, self.group_width)})",
            f"  R_max          : {self.max_retiming} "
            f"(prologue {self.prologue_time} units)",
            f"  cached IRs     : {self.num_cached}/{self.graph.num_edges} "
            f"per group ({self.allocation.slots_used}/"
            f"{self.allocation.capacity_slots} slots)",
            f"  total time     : {self.total_time()} units for "
            f"{self.config.iterations} iterations",
            f"  off-chip/iter  : {self.offchip_bytes_per_iteration()} bytes",
        ]
        return "\n".join(lines)


class ParaConv:
    """Task-level data allocation framework for convolutional connections.

    Args:
        config: machine description (PE count, cache capacity, eDRAM ratio).
        allocator: cache-allocation strategy; the paper's dynamic program by
            default, swappable for the ablation baselines in
            :mod:`repro.core.allocation` (or by registry name).
        kernel_order: packing order of the compacted kernel
            ("topological" or "lpt"; ablation knob).
        liveness_aware: weight each cache candidate by its concurrent
            live-instance count (delta_cache + 1) so steady-state peak
            occupancy respects the capacity -- fixes the transient-spill
            gap in the paper's accounting (see repro.core.liveness).
        validate: run the full semantic validator on the produced schedule
            (cheap; disable only in tight parameter sweeps).
    """

    def __init__(
        self,
        config: PimConfig,
        allocator: Optional[Allocator] = None,
        allocator_name: Optional[str] = None,
        kernel_order: str = "topological",
        liveness_aware: bool = False,
        validate: bool = True,
    ):
        if allocator is not None and allocator_name is not None:
            raise ValueError("pass either allocator or allocator_name, not both")
        if allocator_name is not None:
            try:
                allocator = ALLOCATORS[allocator_name]
            except KeyError:
                known = ", ".join(sorted(ALLOCATORS))
                raise ValueError(
                    f"unknown allocator {allocator_name!r}; known: {known}"
                ) from None
        self.config = config
        self.allocator: Allocator = allocator or dp_allocate
        self.kernel_order = kernel_order
        self.liveness_aware = liveness_aware
        self.validate = validate

    def run(self, graph: TaskGraph) -> ParaConvResult:
        """Execute the full pipeline, maximizing application throughput.

        The paper's objective is "the maximum application throughput while
        minimizing the overall off-chip fetching": the pipeline is
        evaluated at every candidate PE-group width (one iteration per
        group, iterations replicated across groups) and the assignment
        with the smallest total execution time over the configured
        iteration count wins; ties prefer wider groups (lower latency and
        shorter prologue).
        """
        graph.validate()
        best: Optional[ParaConvResult] = None
        for width in candidate_group_widths(self.config.num_pes):
            result = self.run_at_width(graph, width)
            if best is None or result.total_time() < best.total_time():
                best = result
        assert best is not None
        return best

    def run_at_width(self, graph: TaskGraph, width: int) -> ParaConvResult:
        """Execute the pipeline with a fixed PE-group width."""
        graph.validate()
        config = self.config
        if not 1 <= width <= config.num_pes:
            raise ScheduleError(
                f"group width {width} outside [1, {config.num_pes}]"
            )
        num_groups = max(1, config.num_pes // width)

        # Step 2: objective schedule (compacted kernel, Figure 3(b)).
        kernel = compact_kernel_schedule(graph, width, order=self.kernel_order)
        if self.validate:
            validate_kernel(graph, kernel, width)

        # Step 3: extra-data-movement analysis (Section 3.2).
        timings = analyze_edges(graph, kernel, config)

        # Steps 4-5: zero-ΔR pre-pass + dynamic programming (Section 3.3).
        # Concurrent groups split the aggregate cache evenly.
        capacity = config.total_cache_slots // num_groups
        allocator = self.allocator
        if isinstance(allocator, type):
            # Factory allocators (e.g. the iterative extension) need the
            # graph topology and the edge analysis; instantiate per run.
            allocator = allocator(graph, timings)

        def solve(problem):
            allocation = allocator(problem)
            deltas = {
                key: timing.delta_for(allocation.placements[key])
                for key, timing in timings.items()
            }
            return allocation, solve_retiming(graph, deltas)

        allocation, solution = solve(
            AllocationProblem.from_timings(timings, capacity)
        )
        if self.liveness_aware:
            # Second pass: reweight each candidate by its *realized*
            # live-instance count (R(i) - R(j) + 1 from the first pass) so
            # steady-state peak occupancy respects the capacity.
            from repro.core.liveness import liveness_weighted_problem

            realized = {
                edge.key: solution.vertex_retiming[edge.producer]
                - solution.vertex_retiming[edge.consumer]
                for edge in graph.edges()
            }
            allocation, solution = solve(
                liveness_weighted_problem(timings, capacity, realized)
            )
        transfer_times = {
            key: timing.transfer_for(allocation.placements[key])
            for key, timing in timings.items()
        }
        schedule = PeriodicSchedule(
            graph=graph,
            kernel=kernel,
            retiming=solution.vertex_retiming,
            edge_retiming=solution.edge_retiming,
            placements=dict(allocation.placements),
            transfer_times=transfer_times,
        )
        if self.validate:
            validate_periodic_schedule(schedule)

        return ParaConvResult(
            graph=graph,
            config=config,
            schedule=schedule,
            allocation=allocation,
            case_histogram=case_census(timings),
            group_width=width,
            num_groups=num_groups,
        )
