"""The six-case classification of Figure 4.

For each intermediate result, the pair ``(delta_cache, delta_edram)`` of
required relative retiming values -- each in ``{0, 1, 2}`` with
``delta_cache <= delta_edram`` -- falls into exactly one of six cases:

====== ============= =============
case    delta_cache   delta_edram
====== ============= =============
1       0             0
2       0             1
3       0             2
4       1             1
5       1             2
6       2             2
====== ============= =============

Cases 1, 4 and 6 are *placement-indifferent* (``ΔR = 0``): caching them
cannot shorten the prologue, so they go to eDRAM to save cache space
(Section 3.2; Section 3.3.3's sentence sends them the other way, which
contradicts 3.2 -- we follow 3.2 and note the discrepancy in DESIGN.md).
Cases 2, 3 and 5 (``ΔR > 0``) compete for cache capacity in the dynamic
program.
"""

from __future__ import annotations

import enum
from typing import Dict, Mapping, Tuple

from repro.core.retiming import EdgeTiming, RetimingError


class RetimingCase(enum.IntEnum):
    """Figure 4 case identifiers."""

    CASE_1 = 1
    CASE_2 = 2
    CASE_3 = 3
    CASE_4 = 4
    CASE_5 = 5
    CASE_6 = 6

    @property
    def placement_sensitive(self) -> bool:
        """True for cases 2, 3, 5: eDRAM costs extra prologue iterations."""
        return self in (RetimingCase.CASE_2, RetimingCase.CASE_3, RetimingCase.CASE_5)

    @property
    def delta_r(self) -> int:
        """``ΔR`` earned by caching an edge of this case."""
        return _CASE_TO_DELTAS[self][1] - _CASE_TO_DELTAS[self][0]


_DELTAS_TO_CASE: Dict[Tuple[int, int], RetimingCase] = {
    (0, 0): RetimingCase.CASE_1,
    (0, 1): RetimingCase.CASE_2,
    (0, 2): RetimingCase.CASE_3,
    (1, 1): RetimingCase.CASE_4,
    (1, 2): RetimingCase.CASE_5,
    (2, 2): RetimingCase.CASE_6,
}

_CASE_TO_DELTAS: Dict[RetimingCase, Tuple[int, int]] = {
    case: deltas for deltas, case in _DELTAS_TO_CASE.items()
}


def classify(delta_cache: int, delta_edram: int) -> RetimingCase:
    """Map a ``(delta_cache, delta_edram)`` pair to its Figure 4 case."""
    try:
        return _DELTAS_TO_CASE[(delta_cache, delta_edram)]
    except KeyError:
        raise RetimingError(
            f"({delta_cache}, {delta_edram}) is not a feasible retiming "
            "pair: both must lie in {0,1,2} with delta_cache <= delta_edram"
        ) from None


def classify_timing(timing: EdgeTiming) -> RetimingCase:
    """Classify one analyzed edge."""
    return classify(timing.delta_cache, timing.delta_edram)


def classify_all(
    timings: Mapping[Tuple[int, int], EdgeTiming]
) -> Dict[Tuple[int, int], RetimingCase]:
    """Classify every analyzed edge."""
    return {key: classify_timing(t) for key, t in timings.items()}


def case_census(
    timings: Mapping[Tuple[int, int], EdgeTiming]
) -> Dict[RetimingCase, int]:
    """Histogram of cases over a graph's edges (all six keys present)."""
    census = {case: 0 for case in RetimingCase}
    for timing in timings.values():
        census[classify_timing(timing)] += 1
    return census
