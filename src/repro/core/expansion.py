"""Analytic expansion of a periodic schedule into absolute instances.

The executor (:mod:`repro.sim.executor`) *simulates* a schedule against
stateful hardware; this module *computes* the same placement closed-form:
instance ``l`` of operation ``i`` runs in round ``l + R_max - R(i)`` at its
kernel offset. The expansion gives users a concrete, exportable timetable
(prologue, steady state and epilogue included) and powers whole-run Gantt
rendering and schedule export.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.schedule import PeriodicSchedule, ScheduleError


@dataclass(frozen=True)
class ExpandedInstance:
    """One operation instance placed in absolute time."""

    op_id: int
    iteration: int
    round_index: int
    pe: int
    start: int
    finish: int

    @property
    def in_prologue(self) -> bool:
        """Whether this instance runs before the first full round."""
        return self.round_index <= 0  # set by the expander (see below)


@dataclass
class ExpandedSchedule:
    """A fully expanded run: N logical iterations plus prologue/epilogue."""

    schedule: PeriodicSchedule
    iterations: int
    instances: List[ExpandedInstance]

    @property
    def makespan(self) -> int:
        return max((inst.finish for inst in self.instances), default=0)

    @property
    def num_rounds(self) -> int:
        """Rounds spanned: ``R_max`` prologue rounds + N + epilogue tail."""
        return self.iterations + self.schedule.max_retiming

    def instances_in_round(self, round_index: int) -> List[ExpandedInstance]:
        return [i for i in self.instances if i.round_index == round_index]

    def instance(self, op_id: int, iteration: int) -> ExpandedInstance:
        for inst in self.instances:
            if inst.op_id == op_id and inst.iteration == iteration:
                return inst
        raise ScheduleError(f"no instance V{op_id}^{iteration} in expansion")

    def per_pe_timeline(self) -> Dict[int, List[ExpandedInstance]]:
        """Instances grouped by PE, sorted by start time."""
        timeline: Dict[int, List[ExpandedInstance]] = {}
        for inst in self.instances:
            timeline.setdefault(inst.pe, []).append(inst)
        for instances in timeline.values():
            instances.sort(key=lambda i: i.start)
        return timeline


def expand(schedule: PeriodicSchedule, iterations: int) -> ExpandedSchedule:
    """Expand ``iterations`` logical iterations of a periodic schedule.

    Rounds are numbered ``1 .. iterations + R_max``; rounds ``1 .. R_max``
    are the (partial) prologue. Instance ``l`` of operation ``i`` lands in
    round ``l + R_max - R(i)``.
    """
    if iterations < 1:
        raise ScheduleError("iterations must be >= 1")
    period = schedule.period
    r_max = schedule.max_retiming
    instances: List[ExpandedInstance] = []
    for op in schedule.graph.operations():
        retime = schedule.retiming[op.op_id]
        placement = schedule.kernel.placement(op.op_id)
        for iteration in range(1, iterations + 1):
            round_index = iteration + r_max - retime
            base = (round_index - 1) * period
            instances.append(
                ExpandedInstance(
                    op_id=op.op_id,
                    iteration=iteration,
                    round_index=round_index,
                    pe=placement.pe,
                    start=base + placement.start,
                    finish=base + placement.finish,
                )
            )
    instances.sort(key=lambda i: (i.start, i.pe, i.op_id))
    return ExpandedSchedule(
        schedule=schedule, iterations=iterations, instances=instances
    )


def verify_expansion(expanded: ExpandedSchedule) -> None:
    """Cross-check an expansion against the schedule semantics.

    * no two instances overlap on one PE;
    * every dependency (same logical iteration across each edge) is met
      with its transfer latency.

    Raises :class:`ScheduleError` on the first violation. This is the
    closed-form twin of the executor's runtime checks.
    """
    schedule = expanded.schedule
    per_pe = expanded.per_pe_timeline()
    for pe, instances in per_pe.items():
        for left, right in zip(instances, instances[1:]):
            if right.start < left.finish:
                raise ScheduleError(
                    f"PE {pe}: V{left.op_id}^{left.iteration} overlaps "
                    f"V{right.op_id}^{right.iteration}"
                )
    finish: Dict[Tuple[int, int], int] = {
        (inst.op_id, inst.iteration): inst.finish
        for inst in expanded.instances
    }
    start: Dict[Tuple[int, int], int] = {
        (inst.op_id, inst.iteration): inst.start
        for inst in expanded.instances
    }
    for edge in schedule.graph.edges():
        transfer = schedule.transfer_times[edge.key]
        for iteration in range(1, expanded.iterations + 1):
            produced = finish[(edge.producer, iteration)] + transfer
            consumed = start[(edge.consumer, iteration)]
            if produced > consumed:
                raise ScheduleError(
                    f"edge {edge.key} iteration {iteration}: data at "
                    f"{produced}, consumer starts at {consumed}"
                )
