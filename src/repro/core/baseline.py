"""SPARTA baseline (paper Section 4.2, comparison scheme [6]).

SPARTA (Donyanavard et al., CODES'16) is a *runtime* task-allocation
approach for many-core platforms: it collects sensor data to characterize
tasks and uses this information to prioritize tasks when performing
allocation. The original targets heterogeneous HMPs and is closed source;
this reimplementation preserves the properties the paper's comparison
relies on:

* tasks are characterized online from (simulated) sensors -- observed
  execution time and communication volume, optionally noisy -- and
  allocation is priority-ordered by that characterization;
* intra-iteration dependencies are honored (no retiming), so the
  per-iteration latency is critical-path bound;
* cache use is greedy by task priority, not jointly optimized with the
  schedule;
* when the PE array is wider than the graph's useful parallelism, whole
  iterations are replicated across PE groups (as in the paper's
  motivational example, where two iterations run concurrently on two PE
  pairs), which is what makes the baseline scale with PE count at all.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.schedule import KernelSchedule, ScheduleError
from repro.core.scheduler import (
    candidate_group_widths,
    downward_rank,
    list_schedule,
)
from repro.graph.taskgraph import IntermediateResult, TaskGraph
from repro.pim.config import PimConfig
from repro.pim.memory import Placement

EdgeKey = Tuple[int, int]


@dataclass
class TaskSensor:
    """Exponentially averaged per-task sensor readings.

    Models SPARTA's runtime characterization: each observation window
    reports the task's busy time and communication volume; an EMA smooths
    the (noisy) samples.
    """

    alpha: float = 0.5
    observed_exec: float = 0.0
    observed_comm: float = 0.0
    samples: int = 0

    def update(self, exec_time: float, comm_bytes: float) -> None:
        if self.samples == 0:
            self.observed_exec = exec_time
            self.observed_comm = comm_bytes
        else:
            self.observed_exec += self.alpha * (exec_time - self.observed_exec)
            self.observed_comm += self.alpha * (comm_bytes - self.observed_comm)
        self.samples += 1


@dataclass
class SpartaResult:
    """Metrics of a SPARTA run, mirroring :class:`ParaConvResult`."""

    graph: TaskGraph
    config: PimConfig
    kernel: KernelSchedule
    placements: Dict[EdgeKey, Placement]
    group_width: int
    num_groups: int
    priorities: Dict[int, int]

    @property
    def iteration_length(self) -> int:
        """Critical-path-bound makespan ``L`` of one iteration."""
        return self.kernel.period

    @property
    def effective_period(self) -> float:
        """Average time between iteration completions (throughput period)."""
        return self.iteration_length / self.num_groups

    @property
    def num_cached(self) -> int:
        return sum(1 for p in self.placements.values() if p is Placement.CACHE)

    def total_time(self, iterations: Optional[int] = None) -> int:
        """Time to finish ``N`` iterations: ``ceil(N / J) * L``."""
        n = self.config.iterations if iterations is None else iterations
        if n < 1:
            raise ScheduleError("iterations must be >= 1")
        return math.ceil(n / self.num_groups) * self.iteration_length

    def offchip_bytes_per_iteration(self) -> int:
        return sum(
            edge.size_bytes
            for edge in self.graph.edges()
            if self.placements[edge.key] is Placement.EDRAM
        )

    def throughput(self, iterations: Optional[int] = None) -> float:
        n = self.config.iterations if iterations is None else iterations
        return n / self.total_time(n)


class SpartaScheduler:
    """Sensor-driven, dependency-honoring baseline allocator.

    Args:
        config: machine description shared with Para-CONV.
        sensor_noise: relative standard deviation of the simulated sensor
            samples (0 disables noise; SPARTA still works, it just
            characterizes perfectly).
        warmup_iterations: observation windows used for characterization.
        seed: RNG seed for the sensor noise.
    """

    def __init__(
        self,
        config: PimConfig,
        sensor_noise: float = 0.0,
        warmup_iterations: int = 3,
        seed: int = 0,
    ):
        if sensor_noise < 0:
            raise ScheduleError("sensor_noise must be >= 0")
        if warmup_iterations < 1:
            raise ScheduleError("warmup_iterations must be >= 1")
        self.config = config
        self.sensor_noise = sensor_noise
        self.warmup_iterations = warmup_iterations
        self.seed = seed

    # ------------------------------------------------------------------
    def run(self, graph: TaskGraph) -> SpartaResult:
        """Characterize, allocate and schedule one application.

        Without retiming, an operation demand-fetches its eDRAM-resident
        inputs when it starts, stalling its PE for the transfer time (there
        is no earlier iteration the data could have been prefetched from
        -- precisely the overhead Para-CONV's inter-iteration transform
        removes). The schedule therefore runs on a *stalled* view of the
        graph whose execution times include those fetch stalls.
        """
        graph.validate()
        sensors = self._characterize(graph)
        # SPARTA is throughput-aware: it evaluates the same candidate
        # PE-group widths as Para-CONV (one iteration per group, groups
        # splitting the aggregate cache evenly) and keeps the operating
        # point completing its iterations soonest.
        best = None
        for width in candidate_group_widths(self.config.num_pes):
            num_groups = max(1, self.config.num_pes // width)
            capacity = self.config.total_cache_slots // num_groups
            placements = self._allocate_cache(graph, sensors, capacity)
            stalled = self._stalled_view(graph, placements)
            priorities = self._prioritize(stalled, sensors)
            kernel = list_schedule(stalled, width, priority=priorities)
            finish = math.ceil(self.config.iterations / num_groups) * kernel.period
            if best is None or finish < best[0]:
                best = (finish, width, num_groups, kernel, placements, priorities)
        _finish, width, num_groups, kernel, placements, priorities = best
        return SpartaResult(
            graph=graph,
            config=self.config,
            kernel=kernel,
            placements=placements,
            group_width=width,
            num_groups=num_groups,
            priorities=priorities,
        )

    # ------------------------------------------------------------------
    def _stalled_view(
        self, graph: TaskGraph, placements: Dict[EdgeKey, Placement]
    ) -> TaskGraph:
        """Copy of ``graph`` with demand-fetch stalls folded into ``c_i``.

        Each operation's occupancy grows by the transfer time of every
        incoming intermediate result under SPARTA's placement (eDRAM
        fetches stall the PE; cache hits are effectively free). Edge
        readiness latency is then redundant, so the stalled view schedules
        with zero edge latency.
        """
        config = self.config
        stalled = TaskGraph(name=f"{graph.name}-sparta", period_hint=graph.period_hint)
        for op in graph.operations():
            stall = 0
            for edge in graph.in_edges(op.op_id):
                if placements[edge.key] is Placement.CACHE:
                    stall += config.cache_transfer_units(edge.size_bytes)
                else:
                    stall += config.edram_transfer_units(edge.size_bytes)
            stalled.add_operation(
                op.with_execution_time(op.execution_time + stall)
            )
        for edge in graph.edges():
            stalled.add_edge(edge)
        return stalled

    # ------------------------------------------------------------------
    def _characterize(self, graph: TaskGraph) -> Dict[int, TaskSensor]:
        """Simulated sensor sweep: observe each task over warmup windows."""
        rng = random.Random(self.seed)
        sensors: Dict[int, TaskSensor] = {
            op.op_id: TaskSensor() for op in graph.operations()
        }
        for _window in range(self.warmup_iterations):
            for op in graph.operations():
                comm = sum(e.size_bytes for e in graph.out_edges(op.op_id))
                comm += sum(e.size_bytes for e in graph.in_edges(op.op_id))
                exec_obs = float(op.execution_time)
                if self.sensor_noise:
                    exec_obs *= max(0.0, rng.gauss(1.0, self.sensor_noise))
                    comm = comm * max(0.0, rng.gauss(1.0, self.sensor_noise))
                sensors[op.op_id].update(exec_obs, comm)
        return sensors

    def _prioritize(
        self, graph: TaskGraph, sensors: Dict[int, TaskSensor]
    ) -> Dict[int, int]:
        """Priority map: critical-path rank weighted by observed load.

        SPARTA prioritizes tasks using its characterization; we combine the
        structural rank (needed for any list scheduler to be competitive)
        with the sensed execution time, quantized so ordering is stable.
        """
        base = downward_rank(graph, lambda _e: 0)
        return {
            op_id: int(base[op_id] * 1000 + sensors[op_id].observed_exec * 10)
            for op_id in base
        }

    def _allocate_cache(
        self,
        graph: TaskGraph,
        sensors: Dict[int, TaskSensor],
        capacity_slots: int,
    ) -> Dict[EdgeKey, Placement]:
        """Greedy, priority-ordered cache fill (no joint optimization).

        Edges of communication-heavy producers are cached first until the
        per-group capacity runs out -- plausible for a runtime allocator
        that only sees sensed traffic, and deliberately blind to the
        retiming profit structure Para-CONV exploits.
        """
        free_slots = capacity_slots
        order = sorted(
            graph.edges(),
            key=lambda e: (-sensors[e.producer].observed_comm, e.key),
        )
        placements: Dict[EdgeKey, Placement] = {}
        for edge in order:
            slots = self.config.slots_required(edge.size_bytes)
            if slots <= free_slots:
                placements[edge.key] = Placement.CACHE
                free_slots -= slots
            else:
                placements[edge.key] = Placement.EDRAM
        return placements

    def _edge_latency_fn(self, placements: Dict[EdgeKey, Placement]):
        config = self.config

        def latency(edge: IntermediateResult) -> int:
            if placements[edge.key] is Placement.CACHE:
                return config.cache_transfer_units(edge.size_bytes)
            return config.edram_transfer_units(edge.size_bytes)

        return latency
