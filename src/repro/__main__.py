"""Top-level CLI: run Para-CONV on a workload and print the summary.

Usage::

    python -m repro <workload> [--pes N] [--allocator NAME] [--gantt]
    python -m repro --list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cnn.workloads import (
    WORKLOADS,
    UnknownWorkloadError,
    load_workload,
)
from repro.core.allocation import (
    ALLOCATORS,
    UnknownAllocatorError,
    parse_allocator_spec,
)
from repro.core.baseline import SpartaScheduler
from repro.core.gantt import render_kernel, render_retiming
from repro.core.paraconv import ParaConv
from repro.pim.config import PimConfig


def positive_int(text: str) -> int:
    """argparse type: strictly positive integer (PE/iteration counts)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def allocator_spec(text: str) -> str:
    """argparse type: registry name or budgeted spec (``anneal:5000``)."""
    try:
        parse_allocator_spec(text)
    except UnknownAllocatorError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the Para-CONV pipeline on a named workload.",
    )
    parser.add_argument("workload", nargs="?", help="workload name")
    parser.add_argument("--list", action="store_true", help="list workloads")
    parser.add_argument(
        "--pes", type=positive_int, default=32,
        help="number of processing engines (> 0)",
    )
    parser.add_argument(
        "--iterations", type=positive_int, default=1000,
        help="steady-state iteration count N (> 0)",
    )
    parser.add_argument(
        "--allocator", default="dp", type=allocator_spec,
        metavar="SPEC",
        help=(
            "cache-allocation strategy: one of "
            f"{', '.join(sorted(ALLOCATORS))}; search allocators accept a "
            "budget suffix, e.g. anneal:5000"
        ),
    )
    parser.add_argument(
        "--gantt", action="store_true",
        help="render the kernel Gantt chart and the retiming function",
    )
    parser.add_argument(
        "--baseline", action="store_true",
        help="also run the SPARTA baseline and report the reduction",
    )
    parser.add_argument(
        "--simulate", type=int, metavar="N", default=0,
        help="execute N iterations on the discrete-event machine model",
    )
    parser.add_argument(
        "--dot", metavar="FILE",
        help="write the annotated task graph as Graphviz DOT",
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="with --simulate: write a chrome://tracing JSON of the run",
    )
    parser.add_argument(
        "--liveness-aware", action="store_true",
        help="use the liveness-corrected allocation (no cache spills)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="print the compile pipeline: per-pass timings and the "
             "width-search explored/pruned breakdown",
    )
    parser.add_argument(
        "--no-prune", action="store_true",
        help="disable width-search pruning (exhaustive search; useful "
             "with --explain to see what pruning saves)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name in WORKLOADS:
            print(name)
        return 0
    if not args.workload:
        build_parser().print_usage()
        return 2
    config = PimConfig(num_pes=args.pes, iterations=args.iterations)
    try:
        graph = load_workload(args.workload)
    except UnknownWorkloadError as exc:
        # Typed rejection, mirroring UnknownAllocatorError: name what was
        # asked for and enumerate everything that would have worked.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = ParaConv(
        config,
        allocator_name=args.allocator,
        liveness_aware=args.liveness_aware,
        prune_widths=not args.no_prune,
    ).run(graph)
    print(result.summary())
    if args.explain:
        print()
        print(result.explain())
    if args.gantt:
        print()
        print(render_kernel(result.schedule.kernel, num_pes=result.group_width))
        print()
        print(render_retiming(result.schedule))
    if args.dot:
        from repro.graph.dot import result_to_dot

        with open(args.dot, "w") as handle:
            handle.write(result_to_dot(result))
        print(f"\nDOT graph written to {args.dot}")
    if args.simulate:
        from repro.sim.executor import ScheduleExecutor

        trace = ScheduleExecutor(config, num_vaults=32).execute(
            result, iterations=args.simulate
        )
        print(
            f"\nSimulated {args.simulate} iterations: realized "
            f"{trace.realized_makespan} vs analytic {trace.analytic_makespan} "
            f"(slowdown {trace.slowdown:.3f}, max lateness "
            f"{trace.max_lateness}, spills {trace.cache_spills})"
        )
        if args.trace:
            from repro.sim.chrome_trace import write_chrome_trace

            write_chrome_trace(trace, args.trace)
            print(f"chrome://tracing JSON written to {args.trace}")
    if args.baseline:
        sparta = SpartaScheduler(config).run(graph)
        reduction = (
            (sparta.total_time() - result.total_time())
            / sparta.total_time() * 100.0
        )
        print()
        print(
            f"SPARTA baseline: {sparta.total_time()} units "
            f"(groups {sparta.num_groups} x {sparta.group_width} PEs, "
            f"L = {sparta.iteration_length}); "
            f"Para-CONV reduction {reduction:.2f}%"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
