"""Compile-once inference-serving runtime (beyond-paper infrastructure).

The paper's pipeline (:mod:`repro.core.paraconv`) plans one schedule for
one ``(graph, machine)`` pair; the simulator executes one batch. This
package turns that one-shot flow into a serving stack:

* :mod:`repro.runtime.plan_cache` -- content-addressed cache of compiled
  :class:`~repro.core.paraconv.ParaConvResult` plans keyed by stable
  fingerprints of (task graph, machine config, allocator knobs), with an
  in-memory LRU front, an optional on-disk store and hit/miss/eviction
  accounting;
* :mod:`repro.runtime.session` -- :class:`InferenceSession`: compile (or
  cache-load) once, then run arbitrary-``N`` steady-state batches through
  the discrete-event executor without re-planning, amortizing the
  ``R_max*p`` prologue per the paper's ``R_max*p + N*p`` model;
* :mod:`repro.runtime.server` -- a deterministic, synchronous-core request
  scheduler with an admission queue, a batching window that coalesces
  same-workload requests into one simulated batch, and bounded-queue
  backpressure (typed rejection, never deadlock);
* :mod:`repro.runtime.workers` -- parallel cold-start compilation of many
  workloads to warm the plan cache;
* :mod:`repro.runtime.metrics` -- counters, gauges and streaming latency
  histograms (p50/p95/p99, throughput).

Command line::

    python -m repro.runtime warmup --pes 32
    python -m repro.runtime bench flower --requests 32
    python -m repro.runtime stats --disk plans/
"""

from repro.runtime.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.runtime.plan_cache import (
    CacheStats,
    PlanCache,
    PlanKey,
    plan_from_dict,
    plan_key_for,
    plan_to_dict,
)
from repro.runtime.server import (
    REWIRE_CUT_POINTS,
    BatchingServer,
    InferenceRequest,
    QueueFullError,
    RequestResult,
    RewireResult,
)
from repro.runtime.session import (
    BatchResult,
    FaultRetryExhausted,
    InferenceSession,
)
from repro.runtime.workers import WarmupReport, warm_cache

__all__ = [
    "BatchResult",
    "BatchingServer",
    "CacheStats",
    "Counter",
    "FaultRetryExhausted",
    "Gauge",
    "Histogram",
    "InferenceRequest",
    "InferenceSession",
    "MetricsRegistry",
    "PlanCache",
    "PlanKey",
    "QueueFullError",
    "REWIRE_CUT_POINTS",
    "RequestResult",
    "RewireResult",
    "WarmupReport",
    "plan_from_dict",
    "plan_key_for",
    "plan_to_dict",
    "warm_cache",
]
