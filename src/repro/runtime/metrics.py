"""Serving metrics: counters, gauges and streaming latency histograms.

The runtime layer needs the classic serving triplet — request counters,
occupancy gauges, and latency percentiles — without any external metrics
dependency. :class:`Histogram` keeps a bounded reservoir so a long-running
server's memory stays constant while p50/p95/p99 remain exact for small
streams and statistically faithful for large ones.

Thread safety: the registry lock guards instrument *creation*; every
instrument additionally carries its own lock guarding *mutation and
reads* (``Counter.inc``, ``Gauge.set``/``add``, ``Histogram.observe`` and
the summary accessors). The warmup workers and the failover path record
from multiple threads concurrently; without per-instrument locking,
read-modify-write races silently drop increments (the classic
``value += amount`` lost update), which corrupts serving dashboards in
ways no test of single-threaded code can catch.
"""

from __future__ import annotations

import math
import random
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile",
    "record_compile_stats",
]


def percentile(values: List[float], q: float) -> float:
    """Linear-interpolation percentile of ``values`` (``q`` in [0, 100]).

    Matches ``numpy.percentile``'s default (linear) method so the figures
    the CLI prints line up with any offline analysis of the same samples.
    Raises ``ValueError`` on an empty sample or out-of-range ``q``.
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return float(ordered[lower])
    frac = rank - lower
    return float(ordered[lower] * (1.0 - frac) + ordered[upper] * frac)


@dataclass
class Counter:
    """Monotonically increasing counter (thread-safe)."""

    name: str
    value: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def inc(self, amount: int = 1) -> int:
        if amount < 0:
            raise ValueError("counters only move forward")
        with self._lock:
            self.value += amount
            return self.value


@dataclass
class Gauge:
    """Point-in-time value (queue depth, cache occupancy, ...; thread-safe)."""

    name: str
    value: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += float(delta)


class Histogram:
    """Streaming sample distribution with bounded memory.

    Keeps every observation up to ``reservoir_size``; beyond that it
    switches to Vitter's Algorithm R reservoir sampling (seeded, so runs
    are reproducible). Count/sum/min/max are tracked exactly regardless.
    """

    def __init__(self, name: str, reservoir_size: int = 4096, seed: int = 0x5EED):
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.name = name
        self.reservoir_size = reservoir_size
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            if len(self._samples) < self.reservoir_size:
                self._samples.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.reservoir_size:
                    self._samples[slot] = value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        The other histogram's state is snapshotted under *its* lock, then
        folded in under *this* one's — the two locks are never held
        together, so worker threads recording into either side cannot
        deadlock a fleet-view aggregation. Count/sum/min/max stay exact;
        the merged reservoir keeps every sample while the combined stream
        fits, and degrades to a seeded (deterministic) subsample beyond
        ``reservoir_size``, exactly like a single histogram would.
        """
        with other._lock:
            count = other.count
            total = other.total
            low = other.min
            high = other.max
            samples = list(other._samples)
        if not count:
            return
        with self._lock:
            self.count += count
            self.total += total
            self.min = low if self.min is None else min(self.min, low)
            self.max = high if self.max is None else max(self.max, high)
            combined = self._samples + samples
            if len(combined) > self.reservoir_size:
                combined = self._rng.sample(combined, self.reservoir_size)
            self._samples = combined

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        with self._lock:
            samples = list(self._samples)
        return percentile(samples, q)

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def summary(self) -> Dict[str, float]:
        """Consistent snapshot of the classic latency summary.

        All fields are read under one lock acquisition so a concurrent
        ``observe`` can never produce a summary whose count and
        percentiles disagree.
        """
        with self._lock:
            if not self.count:
                return {"count": 0}
            count = self.count
            total = self.total
            low = self.min
            high = self.max
            samples = list(self._samples)
        return {
            "count": count,
            "mean": total / count,
            "min": low,
            "p50": percentile(samples, 50.0),
            "p95": percentile(samples, 95.0),
            "p99": percentile(samples, 99.0),
            "max": high,
        }


@dataclass
class MetricsRegistry:
    """Named collection of counters, gauges and histograms."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    gauges: Dict[str, Gauge] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self.counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self.gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str, reservoir_size: int = 4096) -> Histogram:
        with self._lock:
            if name not in self.histograms:
                self.histograms[name] = Histogram(name, reservoir_size)
            return self.histograms[name]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-compatible dump of everything recorded so far."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self.counters.items())},
                "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
                "histograms": {
                    n: h.summary() for n, h in sorted(self.histograms.items())
                },
            }

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's instruments into this one (fleet view).

        Counters add, gauges *sum* (fleet queue depth is the sum of the
        shards' queue depths), histograms merge sample-wise via
        :meth:`Histogram.merge`. Per-instrument locking is preserved
        throughout — the router aggregates live worker registries while
        those workers keep serving. Returns ``self`` so a fleet snapshot
        reads ``MetricsRegistry().merge(a).merge(b).snapshot()``.
        """
        with other._lock:
            counters = list(other.counters.values())
            gauges = list(other.gauges.values())
            histograms = list(other.histograms.values())
        for counter in counters:
            with counter._lock:
                value = counter.value
            self.counter(counter.name).inc(value)
        for gauge in gauges:
            with gauge._lock:
                value = gauge.value
            self.gauge(gauge.name).add(value)
        for histogram in histograms:
            self.histogram(histogram.name, histogram.reservoir_size).merge(
                histogram
            )
        return self

    def record_compile_stats(self, stats: Any) -> None:
        """Fold one compile's per-pass breakdown into the registry.

        ``stats`` is duck-typed against
        :class:`repro.compiler.pipeline.CompileStats` (``pass_seconds``,
        ``num_explored``, ``num_pruned``, ``total_seconds``) so this module
        never imports the compiler package. Passing ``None`` is a no-op —
        plans hydrated from the disk cache carry no compile stats.
        """
        if stats is None:
            return
        for pass_name, seconds in sorted(stats.pass_seconds.items()):
            self.histogram(f"compile.pass.{pass_name}.seconds").observe(seconds)
        self.counter("compile.widths_explored").inc(stats.num_explored)
        self.counter("compile.widths_pruned").inc(stats.num_pruned)
        self.histogram("compile.total.seconds").observe(stats.total_seconds)

    def render(self) -> str:
        """Human-readable multi-line report (the ``stats`` subcommand).

        Compile-pass histograms recorded via :meth:`record_compile_stats`
        show up here under ``compile.pass.<name>.seconds``."""
        snap = self.snapshot()
        lines: List[str] = []
        for name, value in snap["counters"].items():
            lines.append(f"counter   {name:<32} {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"gauge     {name:<32} {value:g}")
        for name, summary in snap["histograms"].items():
            if summary.get("count"):
                lines.append(
                    f"histogram {name:<32} count={summary['count']} "
                    f"mean={summary['mean']:.6g} p50={summary['p50']:.6g} "
                    f"p95={summary['p95']:.6g} p99={summary['p99']:.6g} "
                    f"max={summary['max']:.6g}"
                )
            else:
                lines.append(f"histogram {name:<32} count=0")
        return "\n".join(lines) if lines else "(no metrics recorded)"


def record_compile_stats(registry: MetricsRegistry, stats: Any) -> None:
    """Module-level alias for :meth:`MetricsRegistry.record_compile_stats`."""
    registry.record_compile_stats(stats)
