"""Parallel cold-start compilation: warm the plan cache for a fleet.

A fresh server has an empty plan cache; the first request for every
workload pays the full planning pipeline. ``warm_cache`` compiles many
workloads concurrently with a :class:`concurrent.futures.ThreadPoolExecutor`
(the planner is pure Python but each compilation is independent, so the
pool also serves as the template for a process-pool swap) and inserts each
plan into the shared cache under its content-addressed key.

Compilation is deterministic per key, so concurrent duplicate compiles are
benign — last-write-wins inserts an identical plan. The report records
per-workload wall time and whether the plan came from cache (a warm disk
tier makes warmup nearly free).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cnn.workloads import load_workload
from repro.core.paraconv import ParaConvResult
from repro.graph.taskgraph import TaskGraph
from repro.pim.config import PimConfig
from repro.runtime.plan_cache import PlanCache, plan_key_for


@dataclass(frozen=True)
class WorkloadWarmup:
    """One workload's warmup outcome."""

    workload: str
    digest: str
    seconds: float
    cached: bool
    #: compile-time plan facts an operator wants at a glance.
    period: int
    max_retiming: int
    num_groups: int
    group_width: int


@dataclass
class WarmupReport:
    """Aggregate outcome of one warmup run."""

    entries: List[WorkloadWarmup] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def compiled(self) -> int:
        return sum(1 for e in self.entries if not e.cached)

    @property
    def from_cache(self) -> int:
        return sum(1 for e in self.entries if e.cached)

    @property
    def serial_seconds(self) -> float:
        """Sum of per-workload times — the no-parallelism baseline."""
        return sum(e.seconds for e in self.entries)

    @property
    def speedup(self) -> float:
        """Parallel speedup over serial compilation (>= 1.0 with workers)."""
        if self.wall_seconds == 0.0:
            return 1.0
        return self.serial_seconds / self.wall_seconds

    def render(self) -> str:
        lines = [
            f"{'workload':<20} {'ms':>9} {'source':>8} {'period':>7} "
            f"{'R_max':>6} {'groups':>12}"
        ]
        for e in sorted(self.entries, key=lambda e: e.workload):
            lines.append(
                f"{e.workload:<20} {e.seconds * 1e3:>9.2f} "
                f"{'cache' if e.cached else 'compile':>8} {e.period:>7} "
                f"{e.max_retiming:>6} {e.num_groups:>4} x {e.group_width:<5}"
            )
        lines.append(
            f"warmed {len(self.entries)} workloads in {self.wall_seconds:.2f}s "
            f"wall ({self.compiled} compiled, {self.from_cache} from cache, "
            f"{self.speedup:.1f}x over serial)"
        )
        return "\n".join(lines)


def warm_cache(
    workloads: Sequence[str],
    config: PimConfig,
    cache: PlanCache,
    allocator: str = "dp",
    kernel_order: str = "topological",
    liveness_aware: bool = False,
    max_workers: Optional[int] = None,
    graph_loader: Optional[Callable[[str], TaskGraph]] = None,
) -> WarmupReport:
    """Compile every named workload into ``cache``, in parallel.

    Args:
        workloads: workload registry names (e.g. the 12 paper benchmarks).
        config: the machine the fleet serves on.
        cache: destination plan cache (thread-safe).
        max_workers: pool width; ``None`` lets the executor pick, ``1``
            degrades to serial (useful for deterministic timing tests).
        graph_loader: workload resolver override for tests.

    Returns a :class:`WarmupReport`; raises the first compilation error
    (a bad workload name should fail warmup loudly, not silently skip).
    """
    loader = graph_loader if graph_loader is not None else load_workload

    def warm_one(name: str) -> WorkloadWarmup:
        started = time.perf_counter()
        graph = loader(name)
        key = plan_key_for(
            graph,
            config,
            allocator=allocator,
            kernel_order=kernel_order,
            liveness_aware=liveness_aware,
        )
        freshly_compiled: Dict[str, bool] = {"value": False}

        def _compile() -> ParaConvResult:
            from repro.core.paraconv import ParaConv

            freshly_compiled["value"] = True
            return ParaConv(
                config,
                allocator_name=allocator,
                kernel_order=kernel_order,
                liveness_aware=liveness_aware,
            ).run(graph)

        plan = cache.get_or_compile(key, _compile)
        return WorkloadWarmup(
            workload=name,
            digest=key.digest,
            seconds=time.perf_counter() - started,
            cached=not freshly_compiled["value"],
            period=plan.period,
            max_retiming=plan.max_retiming,
            num_groups=plan.num_groups,
            group_width=plan.group_width,
        )

    report = WarmupReport()
    started = time.perf_counter()
    if max_workers == 1:
        for name in workloads:
            report.entries.append(warm_one(name))
    else:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            # map() preserves input order and re-raises worker exceptions.
            report.entries.extend(pool.map(warm_one, workloads))
    report.wall_seconds = time.perf_counter() - started
    return report
