"""Content-addressed cache of compiled Para-CONV plans.

Compiling a plan (retiming analysis + the ``B[S, m]`` dynamic program +
width search, paper Section 3) costs orders of magnitude more than looking
one up. The serving runtime therefore keys every compiled
:class:`~repro.core.paraconv.ParaConvResult` by a stable fingerprint of
everything that determines it:

* ``TaskGraph.fingerprint()`` -- the application structure,
* ``PimConfig.fingerprint()`` -- the machine,
* the allocator name and pipeline knobs (kernel order, liveness mode).

The cache is two-tier: an in-memory LRU front (bounded by plan count) and
an optional on-disk store (one JSON file per plan digest, reusing the
:mod:`repro.core.schedule_io` schedule format), so a fleet can ship
pre-compiled plans and a restarted server warms from disk instead of
re-running the dynamic program. All hit/miss/eviction traffic is counted.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.core.allocation import AllocationResult
from repro.core.cases import RetimingCase
from repro.core.paraconv import ParaConvResult
from repro.core.schedule import ScheduleError
from repro.core.schedule_io import schedule_from_dict, schedule_to_dict
from repro.graph.taskgraph import TaskGraph
from repro.pim.config import PimConfig
from repro.pim.memory import Placement

#: On-disk plan payload version; bump on any layout change.
PLAN_FORMAT_VERSION = 1


class PlanCacheError(RuntimeError):
    """Raised for malformed plan payloads or inconsistent cache state."""


# ----------------------------------------------------------------------
# keys
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanKey:
    """Identity of one compiled plan.

    Two compilations with equal keys are guaranteed to produce identical
    plans (the whole pipeline is deterministic), which is what makes the
    cache sound. ``digest`` collapses the key into one hex string used as
    the on-disk filename.
    """

    graph_fingerprint: str
    config_fingerprint: str
    allocator: str = "dp"
    kernel_order: str = "topological"
    liveness_aware: bool = False

    @property
    def digest(self) -> str:
        payload = json.dumps(
            {
                "graph": self.graph_fingerprint,
                "config": self.config_fingerprint,
                "allocator": self.allocator,
                "kernel_order": self.kernel_order,
                "liveness_aware": self.liveness_aware,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def plan_key_for(
    graph: TaskGraph,
    config: PimConfig,
    allocator: str = "dp",
    kernel_order: str = "topological",
    liveness_aware: bool = False,
) -> PlanKey:
    """Build the cache key for one (graph, machine, pipeline-knobs) tuple."""
    return PlanKey(
        graph_fingerprint=graph.fingerprint(),
        config_fingerprint=config.fingerprint(),
        allocator=allocator,
        kernel_order=kernel_order,
        liveness_aware=liveness_aware,
    )


# ----------------------------------------------------------------------
# plan (de)serialization — the on-disk tier
# ----------------------------------------------------------------------
def plan_to_dict(result: ParaConvResult) -> Dict[str, Any]:
    """Serialize a full compiled plan to a JSON-compatible dict.

    Reuses the :mod:`repro.core.schedule_io` schedule format (which embeds
    the task graph) and adds the allocation outcome, the Figure 4 case
    census and the group decomposition — everything
    :class:`ParaConvResult` carries.
    """
    allocation = result.allocation
    return {
        "format_version": PLAN_FORMAT_VERSION,
        "config": result.config.to_dict(),
        "schedule": schedule_to_dict(result.schedule),
        "allocation": {
            "method": allocation.method,
            "placements": [
                {"producer": i, "consumer": j, "where": p.value}
                for (i, j), p in allocation.placements.items()
            ],
            "cached": [[i, j] for (i, j) in allocation.cached],
            "total_delta_r": allocation.total_delta_r,
            "slots_used": allocation.slots_used,
            "capacity_slots": allocation.capacity_slots,
        },
        "case_histogram": {
            str(int(case)): count for case, count in result.case_histogram.items()
        },
        "group_width": result.group_width,
        "num_groups": result.num_groups,
    }


def plan_from_dict(payload: Dict[str, Any]) -> ParaConvResult:
    """Rebuild (and semantically re-validate) a plan from its dict form."""
    version = payload.get("format_version")
    if version != PLAN_FORMAT_VERSION:
        raise PlanCacheError(f"unsupported plan format version {version!r}")
    try:
        schedule = schedule_from_dict(payload["schedule"])
        config = PimConfig.from_dict(payload["config"])
        alloc = payload["allocation"]
        allocation = AllocationResult(
            method=str(alloc["method"]),
            placements={
                (int(r["producer"]), int(r["consumer"])): Placement(r["where"])
                for r in alloc["placements"]
            },
            cached=[(int(i), int(j)) for i, j in alloc["cached"]],
            total_delta_r=int(alloc["total_delta_r"]),
            slots_used=int(alloc["slots_used"]),
            capacity_slots=int(alloc["capacity_slots"]),
        )
        histogram = {
            RetimingCase(int(case)): int(count)
            for case, count in payload.get("case_histogram", {}).items()
        }
        return ParaConvResult(
            graph=schedule.graph,
            config=config,
            schedule=schedule,
            allocation=allocation,
            case_histogram=histogram,
            group_width=int(payload["group_width"]),
            num_groups=int(payload["num_groups"]),
        )
    except (KeyError, TypeError, ValueError, ScheduleError) as exc:
        raise PlanCacheError(f"malformed plan payload: {exc}") from exc


# ----------------------------------------------------------------------
# the cache itself
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    """Hit/miss/eviction accounting for one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    disk_writes: int = 0
    compile_seconds: float = 0.0
    #: disk payloads that parsed but failed invariant verification
    #: (only counted when the cache was built with ``verify_on_load``).
    verify_failures: int = 0
    #: cumulative per-pass compile wall time, summed over every plan this
    #: cache compiled (from each plan's
    #: :class:`~repro.compiler.pipeline.CompileStats`); plans hydrated from
    #: disk contribute nothing — they were never compiled here.
    pass_seconds: Dict[str, float] = field(default_factory=dict)

    def record_compile_stats(self, stats: Any) -> None:
        """Accumulate one compile's per-pass breakdown (``None`` ignored)."""
        if stats is None:
            return
        for pass_name, seconds in stats.pass_seconds.items():
            self.pass_seconds[pass_name] = (
                self.pass_seconds.get(pass_name, 0.0) + seconds
            )

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "disk_hits": self.disk_hits,
            "disk_writes": self.disk_writes,
            "hit_rate": self.hit_rate,
            "compile_seconds": self.compile_seconds,
            "verify_failures": self.verify_failures,
            "pass_seconds": {
                name: self.pass_seconds[name] for name in sorted(self.pass_seconds)
            },
        }


class PlanCache:
    """Two-tier (memory LRU + optional disk) store of compiled plans.

    Args:
        capacity: maximum number of plans held in memory; the least
            recently *used* plan is evicted first. Evicted plans survive
            on disk when a ``disk_dir`` is configured.
        disk_dir: optional directory for the persistent tier. Created on
            first write. One ``<digest>.json`` file per plan. The
            directory may be *shared* by any number of caches across
            threads, workers and processes: writes stage into uniquely
            named temp files and publish with an atomic rename, so
            concurrent writers never produce a torn payload and a plan
            persisted by one worker is a disk hit for every other cache
            pointed at the same directory.
        verify_on_load: when true, plans hydrated from the disk tier are
            checked by the :class:`~repro.verify.validator.ScheduleValidator`
            before entering the memory tier. A plan that parses but breaks
            an invariant (tampered file, stale format producing a subtly
            wrong plan) degrades to a cache miss and bumps
            ``stats.verify_failures`` — serving then recompiles instead of
            executing a corrupt schedule. Memory-tier hits are trusted:
            they were verified (or freshly compiled) on the way in.

    Thread-safe: the warmup workers insert from multiple threads.
    """

    def __init__(
        self,
        capacity: int = 32,
        disk_dir: Optional[Union[str, Path]] = None,
        verify_on_load: bool = False,
    ):
        if capacity < 1:
            raise PlanCacheError("cache capacity must be >= 1")
        self.capacity = capacity
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self.verify_on_load = verify_on_load
        self.stats = CacheStats()
        self._plans: "OrderedDict[str, ParaConvResult]" = OrderedDict()
        self._lock = threading.RLock()

    # -- inspection ----------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        with self._lock:
            return key.digest in self._plans

    def keys(self) -> List[str]:
        """Memory-resident plan digests, least recently used first."""
        with self._lock:
            return list(self._plans)

    def disk_digests(self) -> List[str]:
        """Digests of every plan in the persistent tier."""
        if self.disk_dir is None or not self.disk_dir.is_dir():
            return []
        return sorted(p.stem for p in self.disk_dir.glob("*.json"))

    # -- core operations ----------------------------------------------
    def get(self, key: PlanKey) -> Optional[ParaConvResult]:
        """Look up a plan; promotes memory hits, hydrates disk hits."""
        digest = key.digest
        with self._lock:
            plan = self._plans.get(digest)
            if plan is not None:
                self._plans.move_to_end(digest)
                self.stats.hits += 1
                return plan
            plan = self._load_from_disk(digest)
            if plan is not None:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._insert(digest, plan, write_disk=False)
                return plan
            self.stats.misses += 1
            return None

    def put(self, key: PlanKey, plan: ParaConvResult) -> None:
        """Insert (or refresh) a plan under ``key``."""
        with self._lock:
            self._insert(key.digest, plan, write_disk=True)

    def get_or_compile(
        self, key: PlanKey, compile_fn: Callable[[], ParaConvResult]
    ) -> ParaConvResult:
        """The compile-once primitive: return the cached plan or build it.

        The compile happens outside any per-key memoization lock on
        purpose — compilations of *different* keys may run concurrently
        from the warmup pool; a duplicate concurrent compile of the same
        key is benign (both produce the identical deterministic plan).
        """
        plan = self.get(key)
        if plan is not None:
            return plan
        started = time.perf_counter()
        plan = compile_fn()
        elapsed = time.perf_counter() - started
        with self._lock:
            self.stats.compile_seconds += elapsed
            self.stats.record_compile_stats(getattr(plan, "compile_stats", None))
            self._insert(key.digest, plan, write_disk=True)
        return plan

    def clear(self, memory_only: bool = True) -> None:
        """Drop the in-memory tier (and optionally the disk tier)."""
        with self._lock:
            self._plans.clear()
            if not memory_only and self.disk_dir is not None and self.disk_dir.is_dir():
                for path in self.disk_dir.glob("*.json"):
                    path.unlink()

    # -- internals -----------------------------------------------------
    def _insert(self, digest: str, plan: ParaConvResult, write_disk: bool) -> None:
        if digest in self._plans:
            self._plans.move_to_end(digest)
        self._plans[digest] = plan
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self.stats.evictions += 1
        if write_disk and self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            path = self.disk_dir / f"{digest}.json"
            # Shared-dir safety: many caches (threads *or* processes) may
            # persist the same digest concurrently. Each writer stages
            # into its own uniquely named temp file — a fixed temp name
            # would let two writers interleave into one file and publish
            # torn JSON — then atomically renames it into place. Readers
            # see either the old complete payload or the new one, never a
            # partial write, and last-writer-wins is benign because equal
            # keys always serialize identical plans.
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".{digest}.", suffix=".tmp", dir=self.disk_dir
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(json.dumps(plan_to_dict(plan)))
                os.replace(tmp_name, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_name)
                raise
            self.stats.disk_writes += 1

    def _load_from_disk(self, digest: str) -> Optional[ParaConvResult]:
        if self.disk_dir is None:
            return None
        path = self.disk_dir / f"{digest}.json"
        if not path.is_file():
            return None
        try:
            plan = plan_from_dict(json.loads(path.read_text()))
        except (json.JSONDecodeError, PlanCacheError):
            # A corrupt file must degrade to a miss, never poison serving.
            return None
        if self.verify_on_load and not self._plan_verifies(plan):
            self.stats.verify_failures += 1
            return None
        return plan

    @staticmethod
    def _plan_verifies(plan: ParaConvResult) -> bool:
        """True when the hydrated plan passes the invariant validator."""
        # Lazy import keeps the serving fast path free of the verifier.
        from repro.verify.validator import ScheduleValidator

        return ScheduleValidator().validate(plan).ok
