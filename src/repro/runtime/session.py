"""Compile-once inference sessions.

An :class:`InferenceSession` binds one workload to one machine, pays the
planning cost (retiming analysis + DP allocation + width search) exactly
once — or not at all when the plan cache already holds the plan — and then
serves arbitrary-``N`` steady-state batches through the discrete-event
executor. This is the paper's cost model made operational: the prologue
``R_max * p`` is a per-*deployment* cost, the per-batch marginal cost is
``ceil(N / num_groups) * p``, so a session amortizes compilation and
prologue across every request it serves.

The session path is bit-identical to the direct
``ParaConv(...).run(graph)`` + ``ScheduleExecutor(...).execute(...)``
path: both the planner and the executor are deterministic, and the session
adds no transformation in between (verified by ``benchmarks/test_runtime``).

Fault tolerance. A session constructed with a
:class:`~repro.pim.faults.FaultModel` keeps serving when units die: the
executor raises :class:`~repro.sim.executor.PeFaultError` the moment
scheduled work hits a dead PE or vault, and the session *fails over* —
it degrades the active machine to the survivors
(:meth:`PimConfig.degraded`), recompiles against the degraded config
(through the plan cache, so a repeat of the same fault pattern is a pure
lookup), compacts the fault model into the survivor id space, and replays
the whole batch from iteration zero on the degraded machine. Replaying
from scratch — rather than splicing partial pre-fault work — is what
makes the recovery *exactly* equivalent to a cold compile on the degraded
configuration (the ``repro.verify`` fault differential pins this).
``max_retries`` bounds the number of failovers per batch; exhausting it
raises :class:`FaultRetryExhausted`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Union

from repro.core.paraconv import ParaConv, ParaConvResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.compiler.pipeline import CompileStats
    from repro.runtime.metrics import MetricsRegistry
from repro.graph.taskgraph import TaskGraph
from repro.pim.config import PimConfig
from repro.pim.energy import EnergyModel, EnergyReport
from repro.pim.faults import FAULT_UNIT_PE, FaultModel
from repro.pim.stats import TrafficStats
from repro.runtime.plan_cache import PlanCache, plan_key_for
from repro.sim.executor import ExecutionTrace, PeFaultError, ScheduleExecutor
from repro.sim.modes import SimMode
from repro.sim.sinks import NullSink


class FaultRetryExhausted(RuntimeError):
    """A batch kept hitting faults until the failover budget ran out.

    Carries the retry accounting plus the last fault so callers (the
    batching server, operators' logs) can tell *why* serving gave up.
    """

    def __init__(
        self, workload: str, attempts: int, max_retries: int,
        last_fault: PeFaultError,
    ):
        self.workload = workload
        self.attempts = attempts
        self.max_retries = max_retries
        self.last_fault = last_fault
        super().__init__(
            f"batch for {workload!r} failed {attempts} times "
            f"(max_retries={max_retries}); last fault: {last_fault}"
        )


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one steady-state batch run through a session.

    Carries exactly the quantities the acceptance comparison pins against
    the direct pipeline: makespans, traffic counters and the energy
    breakdown, plus the serving-relevant derived rates.
    """

    iterations: int
    analytic_makespan: int
    realized_makespan: int
    stats: TrafficStats
    energy: EnergyReport
    cache_spills: int
    max_lateness: int
    wall_seconds: float
    #: engine used for this batch (``"full"`` or ``"steady"``).
    sim_mode: str = SimMode.STEADY_STATE.value
    #: round at which the steady-state engine converged (None: never, or
    #: the full-unroll engine was used).
    converged_round: Optional[int] = None
    #: rounds the engine skipped via the O(1) fast-forward splice.
    rounds_fast_forwarded: int = 0
    #: failovers it took to finish this batch (0 on a healthy machine).
    failovers: int = 0
    #: True when the batch was served by a degraded (post-failover or
    #: statically masked) machine.
    degraded: bool = False

    @property
    def sim_throughput(self) -> float:
        """Inferences per simulated time unit."""
        if self.realized_makespan == 0:
            return 0.0
        return self.iterations / self.realized_makespan

    @property
    def wall_throughput(self) -> float:
        """Inferences per wall-clock second of simulation."""
        if self.wall_seconds == 0.0:
            return 0.0
        return self.iterations / self.wall_seconds


class InferenceSession:
    """Compile a plan once, then serve steady-state batches from it.

    Args:
        graph: the workload's task graph.
        config: machine description; its ``iterations`` field only affects
            the width search's objective (as in the one-shot pipeline).
        allocator: allocator spec -- a registry name (``dp`` by default)
            or a budgeted spec such as ``anneal:5000``; budgeted specs are
            normalized to ``name:budget`` form so the plan-cache key
            includes the search budget.
        kernel_order: kernel packing order knob (ablation).
        liveness_aware: liveness-corrected allocation pass.
        cache: optional :class:`PlanCache`; when provided, compilation is
            ``get_or_compile`` against the content-addressed key, so a
            second session for the same (graph, machine, knobs) tuple is a
            pure lookup.
        num_vaults: eDRAM vault count handed to the executor.
        verify: when true, every plan this session compiles (or loads from
            the cache) is pushed through the
            :class:`~repro.verify.validator.ScheduleValidator` before it is
            ever served; a plan with invariant errors raises
            :class:`~repro.verify.violations.VerificationError` instead of
            silently producing wrong latencies.
        metrics: optional :class:`~repro.runtime.metrics.MetricsRegistry`;
            when provided, every *actual* compile records its per-pass
            wall-time breakdown and width-search counters
            (``compile.pass.<name>.seconds``, ``compile.widths_explored``,
            ``compile.widths_pruned``) into the registry. Cache hits record
            nothing — no compilation happened.
        sim_mode: discrete-event engine for the serving path.
            ``SimMode.STEADY_STATE`` (the default) fingerprints the
            machine at round boundaries and fast-forwards converged rounds
            in O(1), so large-``N`` batches cost roughly the transient;
            ``SimMode.FULL_UNROLL`` is the event-by-event oracle. Both
            produce identical aggregate results (the acceptance tests pin
            this), so serving defaults to the fast engine.
        fault_model: optional :class:`~repro.pim.faults.FaultModel`.
            Static masks degrade the machine *before* the first compile
            (no wasted healthy-machine plan); timed events strike during
            :meth:`run` and trigger failover.
        max_retries: failovers allowed per :meth:`run` call before
            :class:`FaultRetryExhausted` is raised.
        retry_backoff_seconds: base sleep between failover attempts
            (linear backoff: ``base * attempt``); 0 disables sleeping.
        sleep: injectable sleep function (tests pass a recorder).
    """

    def __init__(
        self,
        graph: TaskGraph,
        config: PimConfig,
        allocator: str = "dp",
        kernel_order: str = "topological",
        liveness_aware: bool = False,
        cache: Optional[PlanCache] = None,
        num_vaults: int = 32,
        verify: bool = False,
        metrics: Optional["MetricsRegistry"] = None,
        sim_mode: Union[str, SimMode] = SimMode.STEADY_STATE,
        fault_model: Optional[FaultModel] = None,
        max_retries: int = 3,
        retry_backoff_seconds: float = 0.0,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        from repro.core.allocation import canonical_allocator_spec

        # Validates the spec (UnknownAllocatorError is a ValueError) and
        # normalizes budgeted allocators to ``name:budget`` so two sessions
        # with different search budgets never share a plan-cache entry.
        allocator = canonical_allocator_spec(allocator)
        if num_vaults < 1:
            raise ValueError(f"num_vaults must be >= 1, got {num_vaults}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if retry_backoff_seconds < 0:
            raise ValueError(
                f"retry_backoff_seconds must be >= 0, got {retry_backoff_seconds}"
            )
        self.graph = graph
        self.config = config
        self.allocator = allocator
        self.kernel_order = kernel_order
        self.liveness_aware = liveness_aware
        self.cache = cache
        self.num_vaults = num_vaults
        self.verify = verify
        self.metrics = metrics
        self.sim_mode = SimMode.from_name(sim_mode)
        self.max_retries = max_retries
        self.retry_backoff_seconds = retry_backoff_seconds
        self._sleep = sleep if sleep is not None else time.sleep
        # --- fault-tolerance state: the *active* machine starts as the
        # nominal one and shrinks with every failover. ---------------------
        self._active_config: PimConfig = config
        self._active_num_vaults: int = num_vaults
        self._active_fault_model: Optional[FaultModel] = (
            fault_model
            if fault_model is not None and not fault_model.is_trivial
            else None
        )
        #: total faults this session observed (across all run() calls).
        self.faults_observed: int = 0
        #: failovers that required an actual (cache-missing) recompile.
        self.failover_recompiles: int = 0
        #: total failovers performed (cache hits included).
        self.failovers: int = 0
        #: live rewirings performed via :meth:`swap_graph`.
        self.graph_swaps: int = 0
        #: swaps that required an actual (cache-missing) recompile; a
        #: repeat swap to a previously served graph stays flat.
        self.swap_recompiles: int = 0
        #: the trace of the last successful batch (None before the first).
        self.last_trace: Optional[ExecutionTrace] = None
        self._plan: Optional[ParaConvResult] = None
        self._executor: Optional[ScheduleExecutor] = None
        if self._active_fault_model is not None and (
            self._active_fault_model.failed_pes
            or self._active_fault_model.failed_vaults
        ):
            self._apply_static_masks()
        #: wall seconds the last :meth:`compile` call took (0 for a pure
        #: memory hit, which still goes through the cache's accounting).
        self.last_compile_seconds: float = 0.0
        #: number of times this session actually ran the planner.
        self.compilations: int = 0
        #: :class:`~repro.compiler.pipeline.CompileStats` from the last
        #: compile this session *performed* (``None`` after a cache hit or
        #: before the first compile).
        self.last_compile_stats: Optional["CompileStats"] = None

    # ------------------------------------------------------------------
    # fault tolerance
    # ------------------------------------------------------------------
    @property
    def active_config(self) -> PimConfig:
        """The machine currently being served (shrinks across failovers)."""
        return self._active_config

    @property
    def active_num_vaults(self) -> int:
        """Vault count of the machine currently being served."""
        return self._active_num_vaults

    @property
    def degraded_mode(self) -> bool:
        """True once this session serves a reduced machine."""
        return (
            self._active_config.is_degraded
            or self._active_num_vaults != self.num_vaults
        )

    def _metric_inc(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _publish_degraded_gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("degraded_mode").set(
                1.0 if self.degraded_mode else 0.0
            )

    def _apply_static_masks(self) -> None:
        """Degrade *before* the first compile for statically dead units.

        Units the fault model marks dead at t=0 would fault in round one
        anyway; folding them in up front avoids compiling (and caching) a
        doomed healthy-machine plan. Mask ids outside the machine are
        ignored — the unit does not exist, so it cannot die.
        """
        assert self._active_fault_model is not None
        model = self._active_fault_model
        dead_pes = {p for p in model.failed_pes if p < self._active_config.num_pes}
        dead_vaults = {v for v in model.failed_vaults if v < self._active_num_vaults}
        surviving_pes = [
            p for p in range(self._active_config.num_pes) if p not in dead_pes
        ]
        surviving_vaults = [
            v for v in range(self._active_num_vaults) if v not in dead_vaults
        ]
        if dead_pes or dead_vaults:
            self._active_config = self._active_config.degraded(
                surviving_pes, surviving_vaults if dead_vaults else None
            )
            self._active_num_vaults = len(surviving_vaults)
        model = model.compacted(surviving_pes, surviving_vaults)
        self._active_fault_model = model if not model.is_trivial else None
        self._publish_degraded_gauge()

    def _fail_over(self, fault: PeFaultError) -> None:
        """React to one fault: degrade, compact, recompile-or-load.

        The dead unit id is in the *active* machine's logical space;
        :meth:`PimConfig.degraded` composes it through any existing mask,
        and :meth:`FaultModel.compacted` renumbers the remaining fault
        trace so a second failure still strikes the replayed run.
        """
        if fault.unit == FAULT_UNIT_PE:
            surviving_pes = [
                p for p in range(self._active_config.num_pes)
                if p != fault.unit_id
            ]
            surviving_vaults = list(range(self._active_num_vaults))
            if not surviving_pes:
                raise FaultRetryExhausted(
                    self.graph.name, self.failovers + 1, self.max_retries, fault
                ) from fault
            self._active_config = self._active_config.degraded(surviving_pes)
        else:
            surviving_pes = list(range(self._active_config.num_pes))
            surviving_vaults = [
                v for v in range(self._active_num_vaults)
                if v != fault.unit_id
            ]
            if not surviving_vaults:
                raise FaultRetryExhausted(
                    self.graph.name, self.failovers + 1, self.max_retries, fault
                ) from fault
            self._active_config = self._active_config.degraded(
                surviving_pes, surviving_vaults
            )
            self._active_num_vaults = len(surviving_vaults)
        if self._active_fault_model is not None:
            model = self._active_fault_model.compacted(
                surviving_pes, surviving_vaults
            )
            self._active_fault_model = model if not model.is_trivial else None
        # Recompile against the degraded machine. The plan cache keys on
        # the config fingerprint — which now embeds the surviving-unit
        # mask — so a repeat of the same fault pattern is a warm lookup
        # and failover_recompiles stays flat.
        self._plan = None
        self._executor = None
        compiles_before = self.compilations
        self.compile()
        self.failovers += 1
        if self.compilations != compiles_before:
            self.failover_recompiles += 1
            self._metric_inc("failover_recompiles")
        self._publish_degraded_gauge()

    # ------------------------------------------------------------------
    # live rewiring
    # ------------------------------------------------------------------
    def swap_graph(self, new_graph: TaskGraph) -> ParaConvResult:
        """Hot-swap the served workload's graph and recompile in place.

        This is the failover path with a non-fault trigger: the session
        keeps its machine, cache, knobs and counters, drops the active
        plan/executor pair, and recompiles *through the plan cache* for
        the new graph. The plan key embeds the graph fingerprint, so a
        swap back to a previously served graph — or a repeat swap to the
        same one — is a pure warm lookup (``swap_recompiles`` stays
        flat), exactly like a repeated fault pattern.

        The new graph is validated before anything is torn down, so an
        illegal graph leaves the session serving the old plan untouched.
        Returns the plan now being served.
        """
        new_graph.validate()
        self.graph = new_graph
        self._plan = None
        self._executor = None
        compiles_before = self.compilations
        plan = self.compile()
        self.graph_swaps += 1
        self._metric_inc("graph_swaps")
        if self.compilations != compiles_before:
            self.swap_recompiles += 1
            self._metric_inc("swap_recompiles")
        return plan

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    @property
    def plan(self) -> ParaConvResult:
        """The compiled plan; first access triggers :meth:`compile`."""
        if self._plan is None:
            self.compile()
        assert self._plan is not None
        return self._plan

    @property
    def is_compiled(self) -> bool:
        return self._plan is not None

    def _build_pipeline(self) -> ParaConv:
        return ParaConv(
            self._active_config,
            allocator_name=self.allocator,
            kernel_order=self.kernel_order,
            liveness_aware=self.liveness_aware,
        )

    def compile(self, force: bool = False) -> ParaConvResult:
        """Plan (or cache-load) the schedule; idempotent unless ``force``."""
        if self._plan is not None and not force:
            return self._plan
        started = time.perf_counter()
        if self.cache is not None:
            key = plan_key_for(
                self.graph,
                self._active_config,
                allocator=self.allocator,
                kernel_order=self.kernel_order,
                liveness_aware=self.liveness_aware,
            )

            def _compile() -> ParaConvResult:
                self.compilations += 1
                plan = self._build_pipeline().run(self.graph)
                self._record_compile(plan)
                return plan

            self.last_compile_stats = None
            self._plan = self.cache.get_or_compile(key, _compile)
        else:
            self.compilations += 1
            self.last_compile_stats = None
            self._plan = self._build_pipeline().run(self.graph)
            self._record_compile(self._plan)
        if self.verify:
            self._verify_plan(self._plan)
        self.last_compile_seconds = time.perf_counter() - started
        return self._plan

    def _record_compile(self, plan: ParaConvResult) -> None:
        """Stash + publish the per-pass breakdown of a real compile."""
        self.last_compile_stats = plan.compile_stats
        if self.metrics is not None:
            self.metrics.record_compile_stats(plan.compile_stats)

    def _verify_plan(self, plan: ParaConvResult) -> None:
        """Gate a freshly compiled/loaded plan on the paper's invariants."""
        # Imported lazily: the serving path must not pay for the verifier
        # (or depend on it) unless verification was requested.
        from repro.verify.validator import ScheduleValidator

        report = ScheduleValidator().validate(plan)
        report.raise_if_failed()

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def run(
        self,
        iterations: int,
        energy_model: Optional[EnergyModel] = None,
    ) -> BatchResult:
        """Execute one batch of ``iterations`` inferences on the plan.

        Re-uses the compiled plan (and the executor object) across calls:
        no re-planning, no re-validation — only the discrete-event
        execution itself. Each call simulates a fresh machine, exactly
        like the direct executor path.

        Under a fault model, a :class:`~repro.sim.executor.PeFaultError`
        mid-batch triggers failover: degrade, recompile (cache-first),
        replay the whole batch on the surviving machine. At most
        ``max_retries`` failovers are attempted per call; beyond that the
        batch fails with :class:`FaultRetryExhausted`.
        """
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        attempts = 0
        started = time.perf_counter()
        while True:
            plan = self.plan
            if self._executor is None:
                self._executor = ScheduleExecutor(
                    self._active_config,
                    num_vaults=self._active_num_vaults,
                    mode=self.sim_mode,
                )
            try:
                # Serving needs aggregates only: a NullSink keeps
                # per-instance records out of memory no matter how large
                # the batch is.
                trace = self._executor.execute(
                    plan,
                    iterations=iterations,
                    sink=NullSink(),
                    fault_model=self._active_fault_model,
                )
            except PeFaultError as fault:
                attempts += 1
                self.faults_observed += 1
                self._metric_inc("faults_observed")
                if attempts > self.max_retries:
                    raise FaultRetryExhausted(
                        self.graph.name, attempts, self.max_retries, fault
                    ) from fault
                self._fail_over(fault)
                if self.retry_backoff_seconds > 0.0:
                    self._sleep(self.retry_backoff_seconds * attempts)
                continue
            wall = time.perf_counter() - started
            self.last_trace = trace
            return self._batch_result(
                trace,
                energy_model,
                wall,
                failovers=attempts,
                degraded=self.degraded_mode,
            )

    @staticmethod
    def _batch_result(
        trace: ExecutionTrace,
        energy_model: Optional[EnergyModel],
        wall_seconds: float,
        failovers: int = 0,
        degraded: bool = False,
    ) -> BatchResult:
        return BatchResult(
            iterations=trace.iterations,
            analytic_makespan=trace.analytic_makespan,
            realized_makespan=trace.realized_makespan,
            stats=trace.stats,
            energy=trace.energy(energy_model),
            cache_spills=trace.cache_spills,
            max_lateness=trace.max_lateness,
            wall_seconds=wall_seconds,
            sim_mode=trace.sim_mode.value,
            converged_round=trace.converged_round,
            rounds_fast_forwarded=trace.rounds_fast_forwarded,
            failovers=failovers,
            degraded=degraded,
        )

    # ------------------------------------------------------------------
    # analytics
    # ------------------------------------------------------------------
    def total_time(self, iterations: int) -> int:
        """Analytic ``R_max*p + ceil(N/J)*p`` for a batch of ``N``."""
        return self.plan.total_time(iterations)

    def explain_compile(self) -> str:
        """Per-pass timing table for the last compile this session ran.

        Mirrors ``python -m repro ... --explain`` for the serving path.
        Returns a placeholder line when the plan came from the cache (or
        from disk) and therefore carries no compile stats.
        """
        if self.last_compile_stats is None:
            return "(no compile stats: plan served from cache)"
        return self.last_compile_stats.explain()

    def summary(self) -> str:
        plan = self.plan
        state = "cached" if self.compilations == 0 else "compiled"
        line = (
            f"InferenceSession({self.graph.name!r}, {self.config.num_pes} PEs, "
            f"allocator={self.allocator!r}): plan {state} in "
            f"{self.last_compile_seconds * 1e3:.2f} ms, period {plan.period}, "
            f"R_max {plan.max_retiming}, groups {plan.num_groups} x "
            f"{plan.group_width} PEs"
        )
        if self.degraded_mode:
            line += (
                f" [degraded: {self._active_config.num_pes} PEs, "
                f"{self._active_num_vaults} vaults, "
                f"{self.failovers} failovers]"
            )
        return line


def direct_batch(
    graph: TaskGraph,
    config: PimConfig,
    iterations: int,
    allocator: str = "dp",
    num_vaults: int = 32,
    energy_model: Optional[EnergyModel] = None,
    sim_mode: Union[str, SimMode] = SimMode.FULL_UNROLL,
) -> BatchResult:
    """The uncached reference path: plan, execute, report.

    Exists so tests (and users migrating from the one-shot pipeline) can
    compare the session path against a from-scratch run with identical
    semantics. Defaults to the full-unroll oracle engine precisely
    because it is the reference: comparing a steady-state session batch
    against a full-unroll direct batch exercises the fast-forward
    equivalence guarantee end to end.
    """
    result = ParaConv(config, allocator_name=allocator).run(graph)
    started = time.perf_counter()
    trace = ScheduleExecutor(
        config, num_vaults=num_vaults, mode=SimMode.from_name(sim_mode)
    ).execute(result, iterations=iterations)
    wall = time.perf_counter() - started
    return InferenceSession._batch_result(trace, energy_model, wall)
