"""Compile-once inference sessions.

An :class:`InferenceSession` binds one workload to one machine, pays the
planning cost (retiming analysis + DP allocation + width search) exactly
once — or not at all when the plan cache already holds the plan — and then
serves arbitrary-``N`` steady-state batches through the discrete-event
executor. This is the paper's cost model made operational: the prologue
``R_max * p`` is a per-*deployment* cost, the per-batch marginal cost is
``ceil(N / num_groups) * p``, so a session amortizes compilation and
prologue across every request it serves.

The session path is bit-identical to the direct
``ParaConv(...).run(graph)`` + ``ScheduleExecutor(...).execute(...)``
path: both the planner and the executor are deterministic, and the session
adds no transformation in between (verified by ``benchmarks/test_runtime``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from repro.core.paraconv import ParaConv, ParaConvResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.compiler.pipeline import CompileStats
    from repro.runtime.metrics import MetricsRegistry
from repro.graph.taskgraph import TaskGraph
from repro.pim.config import PimConfig
from repro.pim.energy import EnergyModel, EnergyReport
from repro.pim.stats import TrafficStats
from repro.runtime.plan_cache import PlanCache, plan_key_for
from repro.sim.executor import ExecutionTrace, ScheduleExecutor
from repro.sim.modes import SimMode
from repro.sim.sinks import NullSink


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one steady-state batch run through a session.

    Carries exactly the quantities the acceptance comparison pins against
    the direct pipeline: makespans, traffic counters and the energy
    breakdown, plus the serving-relevant derived rates.
    """

    iterations: int
    analytic_makespan: int
    realized_makespan: int
    stats: TrafficStats
    energy: EnergyReport
    cache_spills: int
    max_lateness: int
    wall_seconds: float
    #: engine used for this batch (``"full"`` or ``"steady"``).
    sim_mode: str = SimMode.STEADY_STATE.value
    #: round at which the steady-state engine converged (None: never, or
    #: the full-unroll engine was used).
    converged_round: Optional[int] = None
    #: rounds the engine skipped via the O(1) fast-forward splice.
    rounds_fast_forwarded: int = 0

    @property
    def sim_throughput(self) -> float:
        """Inferences per simulated time unit."""
        if self.realized_makespan == 0:
            return 0.0
        return self.iterations / self.realized_makespan

    @property
    def wall_throughput(self) -> float:
        """Inferences per wall-clock second of simulation."""
        if self.wall_seconds == 0.0:
            return 0.0
        return self.iterations / self.wall_seconds


class InferenceSession:
    """Compile a plan once, then serve steady-state batches from it.

    Args:
        graph: the workload's task graph.
        config: machine description; its ``iterations`` field only affects
            the width search's objective (as in the one-shot pipeline).
        allocator: allocator registry name (``dp`` by default).
        kernel_order: kernel packing order knob (ablation).
        liveness_aware: liveness-corrected allocation pass.
        cache: optional :class:`PlanCache`; when provided, compilation is
            ``get_or_compile`` against the content-addressed key, so a
            second session for the same (graph, machine, knobs) tuple is a
            pure lookup.
        num_vaults: eDRAM vault count handed to the executor.
        verify: when true, every plan this session compiles (or loads from
            the cache) is pushed through the
            :class:`~repro.verify.validator.ScheduleValidator` before it is
            ever served; a plan with invariant errors raises
            :class:`~repro.verify.violations.VerificationError` instead of
            silently producing wrong latencies.
        metrics: optional :class:`~repro.runtime.metrics.MetricsRegistry`;
            when provided, every *actual* compile records its per-pass
            wall-time breakdown and width-search counters
            (``compile.pass.<name>.seconds``, ``compile.widths_explored``,
            ``compile.widths_pruned``) into the registry. Cache hits record
            nothing — no compilation happened.
        sim_mode: discrete-event engine for the serving path.
            ``SimMode.STEADY_STATE`` (the default) fingerprints the
            machine at round boundaries and fast-forwards converged rounds
            in O(1), so large-``N`` batches cost roughly the transient;
            ``SimMode.FULL_UNROLL`` is the event-by-event oracle. Both
            produce identical aggregate results (the acceptance tests pin
            this), so serving defaults to the fast engine.
    """

    def __init__(
        self,
        graph: TaskGraph,
        config: PimConfig,
        allocator: str = "dp",
        kernel_order: str = "topological",
        liveness_aware: bool = False,
        cache: Optional[PlanCache] = None,
        num_vaults: int = 32,
        verify: bool = False,
        metrics: Optional["MetricsRegistry"] = None,
        sim_mode: Union[str, SimMode] = SimMode.STEADY_STATE,
    ):
        from repro.core.allocation import ALLOCATORS

        if allocator not in ALLOCATORS:
            known = ", ".join(sorted(ALLOCATORS))
            raise ValueError(
                f"unknown allocator {allocator!r}; known: {known}"
            )
        if num_vaults < 1:
            raise ValueError(f"num_vaults must be >= 1, got {num_vaults}")
        self.graph = graph
        self.config = config
        self.allocator = allocator
        self.kernel_order = kernel_order
        self.liveness_aware = liveness_aware
        self.cache = cache
        self.num_vaults = num_vaults
        self.verify = verify
        self.metrics = metrics
        self.sim_mode = SimMode.from_name(sim_mode)
        self._plan: Optional[ParaConvResult] = None
        self._executor: Optional[ScheduleExecutor] = None
        #: wall seconds the last :meth:`compile` call took (0 for a pure
        #: memory hit, which still goes through the cache's accounting).
        self.last_compile_seconds: float = 0.0
        #: number of times this session actually ran the planner.
        self.compilations: int = 0
        #: :class:`~repro.compiler.pipeline.CompileStats` from the last
        #: compile this session *performed* (``None`` after a cache hit or
        #: before the first compile).
        self.last_compile_stats: Optional["CompileStats"] = None

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    @property
    def plan(self) -> ParaConvResult:
        """The compiled plan; first access triggers :meth:`compile`."""
        if self._plan is None:
            self.compile()
        assert self._plan is not None
        return self._plan

    @property
    def is_compiled(self) -> bool:
        return self._plan is not None

    def _build_pipeline(self) -> ParaConv:
        return ParaConv(
            self.config,
            allocator_name=self.allocator,
            kernel_order=self.kernel_order,
            liveness_aware=self.liveness_aware,
        )

    def compile(self, force: bool = False) -> ParaConvResult:
        """Plan (or cache-load) the schedule; idempotent unless ``force``."""
        if self._plan is not None and not force:
            return self._plan
        started = time.perf_counter()
        if self.cache is not None:
            key = plan_key_for(
                self.graph,
                self.config,
                allocator=self.allocator,
                kernel_order=self.kernel_order,
                liveness_aware=self.liveness_aware,
            )

            def _compile() -> ParaConvResult:
                self.compilations += 1
                plan = self._build_pipeline().run(self.graph)
                self._record_compile(plan)
                return plan

            self.last_compile_stats = None
            self._plan = self.cache.get_or_compile(key, _compile)
        else:
            self.compilations += 1
            self.last_compile_stats = None
            self._plan = self._build_pipeline().run(self.graph)
            self._record_compile(self._plan)
        if self.verify:
            self._verify_plan(self._plan)
        self.last_compile_seconds = time.perf_counter() - started
        return self._plan

    def _record_compile(self, plan: ParaConvResult) -> None:
        """Stash + publish the per-pass breakdown of a real compile."""
        self.last_compile_stats = plan.compile_stats
        if self.metrics is not None:
            self.metrics.record_compile_stats(plan.compile_stats)

    def _verify_plan(self, plan: ParaConvResult) -> None:
        """Gate a freshly compiled/loaded plan on the paper's invariants."""
        # Imported lazily: the serving path must not pay for the verifier
        # (or depend on it) unless verification was requested.
        from repro.verify.validator import ScheduleValidator

        report = ScheduleValidator().validate(plan)
        report.raise_if_failed()

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def run(
        self,
        iterations: int,
        energy_model: Optional[EnergyModel] = None,
    ) -> BatchResult:
        """Execute one batch of ``iterations`` inferences on the plan.

        Re-uses the compiled plan (and the executor object) across calls:
        no re-planning, no re-validation — only the discrete-event
        execution itself. Each call simulates a fresh machine, exactly
        like the direct executor path.
        """
        plan = self.plan
        if self._executor is None:
            self._executor = ScheduleExecutor(
                self.config, num_vaults=self.num_vaults, mode=self.sim_mode
            )
        started = time.perf_counter()
        # Serving needs aggregates only: a NullSink keeps per-instance
        # records out of memory no matter how large the batch is.
        trace = self._executor.execute(
            plan, iterations=iterations, sink=NullSink()
        )
        wall = time.perf_counter() - started
        return self._batch_result(trace, energy_model, wall)

    @staticmethod
    def _batch_result(
        trace: ExecutionTrace,
        energy_model: Optional[EnergyModel],
        wall_seconds: float,
    ) -> BatchResult:
        return BatchResult(
            iterations=trace.iterations,
            analytic_makespan=trace.analytic_makespan,
            realized_makespan=trace.realized_makespan,
            stats=trace.stats,
            energy=trace.energy(energy_model),
            cache_spills=trace.cache_spills,
            max_lateness=trace.max_lateness,
            wall_seconds=wall_seconds,
            sim_mode=trace.sim_mode.value,
            converged_round=trace.converged_round,
            rounds_fast_forwarded=trace.rounds_fast_forwarded,
        )

    # ------------------------------------------------------------------
    # analytics
    # ------------------------------------------------------------------
    def total_time(self, iterations: int) -> int:
        """Analytic ``R_max*p + ceil(N/J)*p`` for a batch of ``N``."""
        return self.plan.total_time(iterations)

    def explain_compile(self) -> str:
        """Per-pass timing table for the last compile this session ran.

        Mirrors ``python -m repro ... --explain`` for the serving path.
        Returns a placeholder line when the plan came from the cache (or
        from disk) and therefore carries no compile stats.
        """
        if self.last_compile_stats is None:
            return "(no compile stats: plan served from cache)"
        return self.last_compile_stats.explain()

    def summary(self) -> str:
        plan = self.plan
        state = "cached" if self.compilations == 0 else "compiled"
        return (
            f"InferenceSession({self.graph.name!r}, {self.config.num_pes} PEs, "
            f"allocator={self.allocator!r}): plan {state} in "
            f"{self.last_compile_seconds * 1e3:.2f} ms, period {plan.period}, "
            f"R_max {plan.max_retiming}, groups {plan.num_groups} x "
            f"{plan.group_width} PEs"
        )


def direct_batch(
    graph: TaskGraph,
    config: PimConfig,
    iterations: int,
    allocator: str = "dp",
    num_vaults: int = 32,
    energy_model: Optional[EnergyModel] = None,
    sim_mode: Union[str, SimMode] = SimMode.FULL_UNROLL,
) -> BatchResult:
    """The uncached reference path: plan, execute, report.

    Exists so tests (and users migrating from the one-shot pipeline) can
    compare the session path against a from-scratch run with identical
    semantics. Defaults to the full-unroll oracle engine precisely
    because it is the reference: comparing a steady-state session batch
    against a full-unroll direct batch exercises the fast-forward
    equivalence guarantee end to end.
    """
    result = ParaConv(config, allocator_name=allocator).run(graph)
    started = time.perf_counter()
    trace = ScheduleExecutor(
        config, num_vaults=num_vaults, mode=SimMode.from_name(sim_mode)
    ).execute(result, iterations=iterations)
    wall = time.perf_counter() - started
    return InferenceSession._batch_result(trace, energy_model, wall)
