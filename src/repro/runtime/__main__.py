"""Serving-runtime CLI.

Usage::

    python -m repro.runtime warmup [--pes N] [--workloads A B ...] [--jobs J]
    python -m repro.runtime bench <workload> [--requests N] [--iterations K]
    python -m repro.runtime stats --disk DIR

``warmup`` compiles the benchmark plans (in parallel) into the cache —
pass ``--disk`` to persist them; ``bench`` drives the batching server with
a stream of requests and prints the latency/throughput report; ``stats``
inspects a persistent plan store.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional

from repro.cnn.workloads import PAPER_BENCHMARKS, WORKLOADS
from repro.core.allocation import ALLOCATORS
from repro.pim.config import PimConfig
from repro.runtime.plan_cache import PlanCache
from repro.runtime.server import BatchingServer, QueueFullError
from repro.runtime.session import FaultRetryExhausted
from repro.runtime.workers import warm_cache

if TYPE_CHECKING:  # pragma: no cover — annotation-only import
    from repro.pim.faults import FaultModel


def positive_int(text: str) -> int:
    """argparse type: strictly positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pes", type=positive_int, default=32,
                        help="PE count (default 32)")
    parser.add_argument("--iterations", type=positive_int, default=1000,
                        help="width-search iteration count N (default 1000)")
    parser.add_argument("--allocator", default="dp", choices=sorted(ALLOCATORS),
                        help="cache allocator (default dp)")
    parser.add_argument("--disk", metavar="DIR", default=None,
                        help="persistent plan-store directory")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime",
        description="Compile-once inference-serving runtime.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    warmup = sub.add_parser(
        "warmup", help="compile workload plans into the cache in parallel"
    )
    _add_machine_args(warmup)
    warmup.add_argument(
        "--workloads", nargs="+", metavar="NAME", default=None,
        help="workloads to warm (default: the 12 paper benchmarks)",
    )
    warmup.add_argument("--jobs", type=positive_int, default=None,
                        help="worker threads (default: executor-chosen)")

    bench = sub.add_parser(
        "bench", help="serve a request stream and report latency/throughput"
    )
    _add_machine_args(bench)
    bench.add_argument("workload", help="workload name to serve")
    bench.add_argument("--requests", type=positive_int, default=32,
                       help="requests to submit (default 32)")
    bench.add_argument("--batch-iterations", type=positive_int, default=1,
                       help="inference iterations per request (default 1)")
    bench.add_argument("--queue", type=positive_int, default=64,
                       help="admission-queue bound (default 64)")
    bench.add_argument("--window", type=positive_int, default=8,
                       help="batching window (default 8)")
    bench.add_argument("--sim-mode", choices=("full", "steady", "columnar", "columnar-steady"),
                       default="steady",
                       help="discrete-event engine: 'steady' fingerprints "
                       "the machine and fast-forwards converged rounds "
                       "(default), 'full' is the event-by-event oracle")
    bench.add_argument("--fault-pe", type=int, metavar="ID", default=None,
                       help="inject a PE failure: this PE dies at the "
                       "--fault-at iteration boundary of every batch")
    bench.add_argument("--fault-vault", type=int, metavar="ID", default=None,
                       help="inject an eDRAM vault failure at --fault-at")
    bench.add_argument("--fault-at", type=int, default=1, metavar="N",
                       help="iteration boundary at which the injected "
                       "unit dies (0 = dead from the start; default 1)")
    bench.add_argument("--max-retries", type=int, default=3,
                       help="failover budget per batch (default 3)")
    bench.add_argument("--json", action="store_true",
                       help="emit a machine-readable JSON report")

    stats = sub.add_parser("stats", help="inspect a persistent plan store")
    stats.add_argument("--disk", metavar="DIR", required=True,
                       help="plan-store directory to inspect")
    return parser


def _machine(args: argparse.Namespace) -> PimConfig:
    return PimConfig(num_pes=args.pes, iterations=args.iterations)


def cmd_warmup(args: argparse.Namespace) -> int:
    names = args.workloads if args.workloads is not None else list(PAPER_BENCHMARKS)
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        known = ", ".join(sorted(WORKLOADS))
        print(f"unknown workloads {unknown}; known: {known}", file=sys.stderr)
        return 2
    cache = PlanCache(capacity=max(32, len(names)), disk_dir=args.disk)
    report = warm_cache(
        names,
        _machine(args),
        cache,
        allocator=args.allocator,
        max_workers=args.jobs,
    )
    print(report.render())
    breakdown = _pass_breakdown(cache)
    if breakdown:
        print(breakdown)
    if args.disk:
        print(f"plans persisted to {args.disk} "
              f"({len(cache.disk_digests())} on disk)")
    return 0


def _pass_breakdown(cache: PlanCache) -> str:
    """Cumulative compile-pass wall time accumulated by a plan cache."""
    pass_seconds = cache.stats.pass_seconds
    if not pass_seconds:
        return ""
    lines = ["compile pass breakdown (cumulative):"]
    for name in sorted(pass_seconds, key=lambda n: -pass_seconds[n]):
        lines.append(f"  {name:<20} {pass_seconds[name] * 1e3:9.3f} ms")
    return "\n".join(lines)


def _fault_model(args: argparse.Namespace) -> Optional["FaultModel"]:
    """Build the injected fault trace from bench flags (None when clean)."""
    events = []
    if args.fault_pe is not None:
        events.append(("pe", args.fault_pe))
    if args.fault_vault is not None:
        events.append(("vault", args.fault_vault))
    if not events:
        return None
    from repro.pim.faults import FaultEvent, FaultModel

    return FaultModel(
        events=tuple(
            FaultEvent(args.fault_at, unit, unit_id)
            for unit, unit_id in events
        )
    )


def cmd_bench(args: argparse.Namespace) -> int:
    if args.workload not in WORKLOADS:
        known = ", ".join(sorted(WORKLOADS))
        print(f"unknown workload {args.workload!r}; known: {known}",
              file=sys.stderr)
        return 2
    cache = PlanCache(disk_dir=args.disk)
    server = BatchingServer(
        _machine(args),
        cache=cache,
        max_queue=args.queue,
        batch_window=args.window,
        allocator=args.allocator,
        sim_mode=args.sim_mode,
        fault_model=_fault_model(args),
        max_retries=args.max_retries,
    )
    rejected = 0
    try:
        for _ in range(args.requests):
            try:
                server.submit(args.workload, iterations=args.batch_iterations)
            except QueueFullError:
                rejected += 1
                server.drain()  # relieve backpressure, then keep submitting
                server.submit(args.workload, iterations=args.batch_iterations)
        server.drain()
    except FaultRetryExhausted as exc:
        print(f"serving gave up: {exc}", file=sys.stderr)
        return 1
    results = server.results  # includes batches drained mid-stream

    sim = server.metrics.histogram("sim_latency_units")
    wall = server.metrics.histogram("wall_latency_seconds")
    throughput = server.throughput_summary()
    snapshot = server.metrics.snapshot()
    counters = snapshot["counters"]
    engine = {
        "sim_mode": args.sim_mode,
        "batches_converged": counters.get("sim_batches_converged", 0),
        "rounds_fast_forwarded": counters.get("sim_rounds_fast_forwarded", 0),
    }
    fault_tolerance = {
        "faults_observed": counters.get("faults_observed", 0),
        "failover_recompiles": counters.get("failover_recompiles", 0),
        "batches_failed_over": counters.get("batches_failed_over", 0),
        "degraded_mode": snapshot["gauges"].get("degraded_mode", 0.0),
    }
    if args.json:
        print(json.dumps({
            "workload": args.workload,
            "requests": len(results),
            "rejected": rejected,
            "sim_latency_units": sim.summary(),
            "wall_latency_seconds": wall.summary(),
            "throughput": throughput,
            "engine": engine,
            "fault_tolerance": fault_tolerance,
            "plan_cache": cache.stats.as_dict(),
        }, indent=2))
        return 0
    print(f"served {len(results)} requests for {args.workload!r} "
          f"({rejected} transiently rejected by backpressure)")
    print(
        f"  sim latency (units) : p50={sim.p50:.0f} p95={sim.p95:.0f} "
        f"p99={sim.p99:.0f} max={sim.max:.0f}"
    )
    print(
        f"  wall latency (ms)   : p50={wall.p50 * 1e3:.2f} "
        f"p95={wall.p95 * 1e3:.2f} p99={wall.p99 * 1e3:.2f} "
        f"max={wall.max * 1e3:.2f}"
    )
    print(
        f"  throughput          : {throughput['sim_throughput']:.4f} inf/unit "
        f"simulated, {throughput['wall_throughput']:.1f} inf/s wall"
    )
    print(
        f"  engine              : {engine['sim_mode']} "
        f"({engine['batches_converged']:.0f} batches converged, "
        f"{engine['rounds_fast_forwarded']:.0f} rounds fast-forwarded)"
    )
    if fault_tolerance["faults_observed"]:
        print(
            f"  fault tolerance     : "
            f"{fault_tolerance['faults_observed']:.0f} faults observed, "
            f"{fault_tolerance['failover_recompiles']:.0f} failover "
            f"recompiles, "
            f"{fault_tolerance['batches_failed_over']:.0f} batches failed "
            f"over, degraded_mode={fault_tolerance['degraded_mode']:g}"
        )
    print()
    print(server.stats_report())
    breakdown = _pass_breakdown(cache)
    if breakdown:
        print(breakdown)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    store = Path(args.disk)
    if not store.is_dir():
        print(f"no plan store at {store}", file=sys.stderr)
        return 2
    from repro.runtime.plan_cache import plan_from_dict

    files = sorted(store.glob("*.json"))
    print(f"plan store {store}: {len(files)} plans")
    for path in files:
        try:
            plan = plan_from_dict(json.loads(path.read_text()))
        except Exception as exc:  # corrupt entries are reported, not fatal
            print(f"  {path.stem[:16]}…  UNREADABLE ({exc})")
            continue
        print(
            f"  {path.stem[:16]}…  {plan.graph.name:<20} "
            f"{plan.config.num_pes:>3} PEs  period={plan.period:<4} "
            f"R_max={plan.max_retiming:<3} groups={plan.num_groups}x"
            f"{plan.group_width}  {path.stat().st_size / 1024:.1f} KiB"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "warmup":
        return cmd_warmup(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "stats":
        return cmd_stats(args)
    return 2  # pragma: no cover — argparse enforces the choices


if __name__ == "__main__":
    sys.exit(main())
