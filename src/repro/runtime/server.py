"""Batching request scheduler with bounded-queue backpressure.

Design: a *synchronous core*. The server is a deterministic state machine
— ``submit()`` either admits a request into the bounded queue or raises
:class:`QueueFullError`; ``step()`` forms one batch and runs it;
``drain()`` loops ``step()`` until the queue is empty. There are no
threads and no waiting inside the core, which makes every scheduling
decision unit-testable and reproducible. Wall-clock timing comes from an
injectable ``clock`` so tests can drive virtual time.

Batching policy (the PIMfused observation: steady-state scheduling, not
per-request planning, dominates throughput): ``step()`` picks the oldest
queued request and coalesces every other queued request for the *same
plan* (same workload fingerprint + knobs) up to ``batch_window`` requests
into one simulated steady-state batch. The prologue ``R_max * p`` is paid
once per batch and attributed to the batch, not multiplied per request —
exactly the paper's ``R_max*p + N*p`` amortization.

Per-request latency has two clocks:

* *simulated* latency — time units from batch start until the request's
  last iteration completes inside the simulated machine (FIFO order
  within a batch), and
* *wall* latency — seconds from ``submit()`` until its batch finished
  executing on this host.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.cnn.workloads import load_workload
from repro.graph.taskgraph import TaskGraph
from repro.pim.config import PimConfig
from repro.pim.faults import FaultModel
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.plan_cache import PlanCache
from repro.runtime.session import (
    BatchResult,
    FaultRetryExhausted,
    InferenceSession,
)
from repro.sim.modes import SimMode


class QueueFullError(RuntimeError):
    """Typed backpressure signal: the admission queue is at capacity.

    Carries enough context for a client to implement retry-with-backoff.
    """

    def __init__(self, capacity: int, workload: str):
        self.capacity = capacity
        self.workload = workload
        super().__init__(
            f"admission queue full ({capacity} requests); "
            f"rejecting request for {workload!r}"
        )


@dataclass(frozen=True)
class InferenceRequest:
    """One admitted inference request."""

    request_id: int
    workload: str
    iterations: int
    submit_wall: float

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")


@dataclass(frozen=True)
class RequestResult:
    """Everything measured for one served request."""

    request: InferenceRequest
    batch_id: int
    batch_size: int
    #: simulated time units from batch start to this request's completion.
    sim_latency: int
    #: wall seconds from submit() to batch completion.
    wall_latency: float
    #: the batch-level measurements this request shared.
    batch: BatchResult


@dataclass
class _WorkloadState:
    """Per-workload session plus arrival bookkeeping."""

    session: InferenceSession
    queued: int = 0


#: legal ``cut_point`` values for :meth:`BatchingServer.rewire`.
REWIRE_CUT_POINTS = ("drain", "reroute")


@dataclass(frozen=True)
class RewireResult:
    """Outcome of one live :meth:`BatchingServer.rewire` call.

    The accounting closes by construction: every request queued for the
    workload at the cut-point is either in ``drained`` (served on the old
    plan before the swap) or counted in ``rerouted`` (left queued, served
    on the new plan) — nothing is dropped.
    """

    workload: str
    cut_point: str
    #: requests served on the *old* plan before the swap ("drain" only).
    drained: List[RequestResult]
    #: queued requests carried across the swap onto the *new* plan.
    rerouted: int
    #: True when the swap needed an actual compile (cold new graph);
    #: False means the new plan came warm from the cache.
    recompiled: bool
    old_period: Optional[int]
    new_period: int

    @property
    def drained_requests(self) -> int:
        return len(self.drained)


class BatchingServer:
    """Deterministic single-host serving core over the plan cache.

    Args:
        config: machine every request is served on.
        cache: shared plan cache (a fresh private one when omitted).
        max_queue: admission-queue bound; beyond it ``submit`` raises
            :class:`QueueFullError` instead of blocking — bounded memory
            and no deadlock under overload, the caller owns retry policy.
        batch_window: maximum requests coalesced into one simulated batch.
        allocator: allocator registry name for plan compilation.
        num_vaults: executor vault count.
        clock: wall-clock source (``time.perf_counter`` by default);
            injectable for deterministic tests.
        graph_loader: workload-name resolver (:func:`load_workload` by
            default); injectable so tests can serve synthetic graphs.
        sim_mode: discrete-event engine for every session this server
            creates (``steady`` by default — large batches cost roughly
            the transient; ``full`` forces the event-by-event oracle).
        fault_model: optional :class:`~repro.pim.faults.FaultModel`
            handed to every session — each batch replays the fault trace
            on a fresh simulated machine, and sessions fail over to
            degraded plans through the shared cache.
        max_retries: per-batch failover budget (see
            :class:`~repro.runtime.session.InferenceSession`).
        results_retention: bound on the retained :class:`RequestResult`
            history. The server keeps the newest ``results_retention``
            results for inspection and evicts the oldest beyond that
            (counted in the ``results_evicted`` metric); aggregate
            throughput figures are tracked separately and stay exact, so
            a long-running server's memory no longer grows per request.
    """

    def __init__(
        self,
        config: PimConfig,
        cache: Optional[PlanCache] = None,
        max_queue: int = 64,
        batch_window: int = 8,
        allocator: str = "dp",
        num_vaults: int = 32,
        clock: Optional[Callable[[], float]] = None,
        graph_loader: Optional[Callable[[str], TaskGraph]] = None,
        sim_mode: "SimMode | str" = SimMode.STEADY_STATE,
        fault_model: Optional[FaultModel] = None,
        max_retries: int = 3,
        results_retention: int = 10_000,
    ):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if batch_window < 1:
            raise ValueError("batch_window must be >= 1")
        if results_retention < 1:
            raise ValueError("results_retention must be >= 1")
        self.config = config
        self.cache = cache if cache is not None else PlanCache()
        self.max_queue = max_queue
        self.batch_window = batch_window
        self.allocator = allocator
        self.num_vaults = num_vaults
        self.clock = clock if clock is not None else time.perf_counter
        self.graph_loader = graph_loader if graph_loader is not None else load_workload
        self.sim_mode = SimMode.from_name(sim_mode)
        self.fault_model = fault_model
        self.max_retries = max_retries
        self.results_retention = results_retention
        self.metrics = MetricsRegistry()
        self._queue: Deque[InferenceRequest] = deque()
        self._sessions: Dict[str, _WorkloadState] = {}
        #: live-rewire overrides: workload name -> graph that replaces
        #: whatever ``graph_loader`` would resolve (set by :meth:`rewire`
        #: so sessions created *after* a rewire also serve the new graph).
        self._graph_overrides: Dict[str, TaskGraph] = {}
        self._ids = itertools.count(1)
        self._batches = itertools.count(1)
        self._results: Deque[RequestResult] = deque(maxlen=results_retention)
        #: exact aggregate wall time attributed to served requests, kept
        #: outside the bounded history so eviction never skews throughput.
        self._wall_seconds_served: float = 0.0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def submit(self, workload: str, iterations: int = 1) -> InferenceRequest:
        """Admit one request or raise :class:`QueueFullError`.

        Invalid arguments are rejected *before* the queue-capacity check:
        a malformed request must raise ``ValueError`` (not masquerade as
        backpressure) and must never consume queue accounting.
        """
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        if len(self._queue) >= self.max_queue:
            self.metrics.counter("requests_rejected").inc()
            raise QueueFullError(self.max_queue, workload)
        request = InferenceRequest(
            request_id=next(self._ids),
            workload=workload,
            iterations=iterations,
            submit_wall=self.clock(),
        )
        self._queue.append(request)
        self._state_for(workload).queued += 1
        self.metrics.counter("requests_accepted").inc()
        self.metrics.gauge("queue_depth").set(len(self._queue))
        return request

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def step(self) -> List[RequestResult]:
        """Serve one batch: coalesce, execute, time. No-op on empty queue."""
        if not self._queue:
            return []
        head = self._queue[0]
        batch: List[InferenceRequest] = []
        kept: Deque[InferenceRequest] = deque()
        # Oldest-first coalescing: take the head's workload, sweep the
        # queue in FIFO order for up to batch_window same-plan requests,
        # preserve everyone else's order.
        while self._queue:
            request = self._queue.popleft()
            if request.workload == head.workload and len(batch) < self.batch_window:
                batch.append(request)
            else:
                kept.append(request)
        self._queue = kept
        self.metrics.gauge("queue_depth").set(len(self._queue))
        return self._execute_batch(batch)

    def drain(self) -> List[RequestResult]:
        """Serve until the queue is empty; returns results in batch order."""
        results: List[RequestResult] = []
        while self._queue:
            results.extend(self.step())
        return results

    def queued_requests(self) -> List[InferenceRequest]:
        """The admitted-but-unserved requests, in FIFO order (a copy)."""
        return list(self._queue)

    def remove_queued(
        self,
        predicate: Optional[Callable[[InferenceRequest], bool]] = None,
    ) -> List[InferenceRequest]:
        """Remove (without serving) every queued request matching ``predicate``.

        With no predicate the whole queue is evicted. Queue-depth and
        per-workload accounting stay exact; the removed requests are
        returned in FIFO order so a caller can re-route them — this is
        the primitive the fleet tier uses to drain a dead shard's queue
        and to shed deadline-expired requests. Nothing is counted as
        served or failed here: disposition is the caller's decision.
        """
        removed: List[InferenceRequest] = []
        kept: Deque[InferenceRequest] = deque()
        for request in self._queue:
            if predicate is None or predicate(request):
                removed.append(request)
            else:
                kept.append(request)
        if removed:
            self._queue = kept
            for request in removed:
                self._state_for(request.workload).queued -= 1
            self.metrics.gauge("queue_depth").set(len(self._queue))
        return removed

    def sessions(self) -> Dict[str, InferenceSession]:
        """The per-workload sessions created so far (read-only view)."""
        return {name: state.session for name, state in self._sessions.items()}

    # ------------------------------------------------------------------
    # live rewiring
    # ------------------------------------------------------------------
    def rewire(
        self,
        workload: str,
        new_graph: TaskGraph,
        cut_point: str = "drain",
    ) -> RewireResult:
        """Hot-swap ``workload``'s graph mid-session; nothing is dropped.

        The cut-point declares what happens to requests already queued
        for the workload when the swap lands:

        * ``"drain"`` — queued requests are served on the *old* plan
          first (coalesced into batches exactly like :meth:`step`, other
          workloads' queue order preserved), then the plan is swapped.
        * ``"reroute"`` — queued requests stay queued across the swap
          and are served on the *new* plan; the swap is atomic from the
          queue's point of view.

        Either way the session is rewired through
        :meth:`InferenceSession.swap_graph` — the recompile-through-cache
        failover path with a non-fault trigger — so a repeat swap to a
        previously served graph is a warm lookup (``recompiled=False``),
        and future sessions for this workload name (e.g. after a server
        restart with the same ``graph_loader`` override map) compile the
        new graph. Accounting closes: every request queued at the
        cut-point ends up served (drained) or still queued (rerouted).
        """
        if cut_point not in REWIRE_CUT_POINTS:
            raise ValueError(
                f"cut_point must be one of {REWIRE_CUT_POINTS}, "
                f"got {cut_point!r}"
            )
        state = self._state_for(workload)
        old_period = (
            state.session.plan.period if state.session.is_compiled else None
        )
        drained: List[RequestResult] = []
        if cut_point == "drain":
            # Targeted step() loop: serve every queued request for this
            # workload on the old plan, batch_window at a time, without
            # disturbing other workloads' FIFO order.
            while state.queued > 0:
                batch: List[InferenceRequest] = []
                kept: Deque[InferenceRequest] = deque()
                while self._queue:
                    request = self._queue.popleft()
                    if (
                        request.workload == workload
                        and len(batch) < self.batch_window
                    ):
                        batch.append(request)
                    else:
                        kept.append(request)
                self._queue = kept
                self.metrics.gauge("queue_depth").set(len(self._queue))
                drained.extend(self._execute_batch(batch))
        rerouted = state.queued
        recompiles_before = state.session.swap_recompiles
        # swap_graph validates the new graph before tearing anything
        # down, so an illegal graph raises here and the override below
        # is never installed — loader state stays consistent.
        new_plan = state.session.swap_graph(new_graph)
        self._graph_overrides[workload] = new_graph
        recompiled = state.session.swap_recompiles != recompiles_before
        self.metrics.counter("graph_rewires").inc()
        return RewireResult(
            workload=workload,
            cut_point=cut_point,
            drained=drained,
            rerouted=rerouted,
            recompiled=recompiled,
            old_period=old_period,
            new_period=new_plan.period,
        )

    @property
    def results(self) -> List[RequestResult]:
        """Retained results in batch order (newest ``results_retention``).

        Older results are evicted once the bound is hit; the aggregate
        counters (``requests_served``, throughput) remain exact.
        """
        return list(self._results)

    def set_graph_override(self, workload: str, new_graph: TaskGraph) -> None:
        """Pin ``workload`` to ``new_graph`` without touching live sessions.

        The fleet router uses this on shards that have never served the
        workload: their *first* session must already compile the new
        graph, but there is nothing to swap or drain yet.
        """
        new_graph.validate()
        self._graph_overrides[workload] = new_graph

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _load_graph(self, workload: str) -> TaskGraph:
        """Resolve a workload name, honouring live-rewire overrides."""
        override = self._graph_overrides.get(workload)
        return override if override is not None else self.graph_loader(workload)

    def _state_for(self, workload: str) -> _WorkloadState:
        state = self._sessions.get(workload)
        if state is None:
            graph = self._load_graph(workload)
            state = _WorkloadState(
                session=InferenceSession(
                    graph,
                    self.config,
                    allocator=self.allocator,
                    cache=self.cache,
                    num_vaults=self.num_vaults,
                    sim_mode=self.sim_mode,
                    metrics=self.metrics,
                    fault_model=self.fault_model,
                    max_retries=self.max_retries,
                )
            )
            self._sessions[workload] = state
        return state

    def _execute_batch(self, batch: List[InferenceRequest]) -> List[RequestResult]:
        state = self._state_for(batch[0].workload)
        state.queued -= len(batch)
        batch_id = next(self._batches)
        total_iterations = sum(r.iterations for r in batch)
        compile_was_needed = not state.session.is_compiled
        try:
            batch_result = state.session.run(total_iterations)
        except FaultRetryExhausted:
            # The batch could not be served within the failover budget.
            # Account for every request in it, then surface the typed
            # error — the caller owns give-up/retry policy, exactly like
            # QueueFullError on the admission side.
            self.metrics.counter("requests_failed").inc(len(batch))
            self.metrics.counter("batches_failed").inc()
            raise
        finished_wall = self.clock()
        if compile_was_needed:
            self.metrics.counter("plans_compiled_or_loaded").inc()
            self.metrics.histogram("compile_seconds").observe(
                state.session.last_compile_seconds
            )
        # FIFO attribution inside the batch: request k completes when its
        # last iteration does. Prologue + ceil(cumulative/J) * p, i.e. the
        # analytic completion prefix of the shared steady-state schedule.
        plan = state.session.plan
        results: List[RequestResult] = []
        cumulative = 0
        for request in batch:
            cumulative += request.iterations
            sim_latency = plan.total_time(cumulative)
            wall_latency = finished_wall - request.submit_wall
            result = RequestResult(
                request=request,
                batch_id=batch_id,
                batch_size=len(batch),
                sim_latency=sim_latency,
                wall_latency=wall_latency,
                batch=batch_result,
            )
            results.append(result)
            self.metrics.histogram("sim_latency_units").observe(sim_latency)
            self.metrics.histogram("wall_latency_seconds").observe(wall_latency)
        self.metrics.counter("batches_executed").inc()
        self.metrics.counter("requests_served").inc(len(batch))
        self.metrics.counter("inferences_served").inc(total_iterations)
        self.metrics.counter("sim_units_busy").inc(batch_result.realized_makespan)
        self.metrics.counter("cache_spills").inc(batch_result.cache_spills)
        # Steady-state engine observability: how much simulated work the
        # fingerprint fast-forward saved this server so far.
        if batch_result.rounds_fast_forwarded:
            self.metrics.counter("sim_rounds_fast_forwarded").inc(
                batch_result.rounds_fast_forwarded
            )
        if batch_result.converged_round is not None:
            self.metrics.counter("sim_batches_converged").inc()
        # Fault-tolerance observability: batches that needed failover and
        # whether the server is currently serving a degraded machine.
        if batch_result.failovers:
            self.metrics.counter("batches_failed_over").inc()
        self.metrics.gauge("degraded_mode").set(
            1.0 if any(
                s.session.degraded_mode for s in self._sessions.values()
            ) else 0.0
        )
        # Exact aggregates survive history eviction (wall seconds are
        # attributed once per request, matching the pre-retention sum).
        self._wall_seconds_served += len(results) * batch_result.wall_seconds
        overflow = max(
            0, len(self._results) + len(results) - self.results_retention
        )
        if overflow:
            self.metrics.counter("results_evicted").inc(overflow)
        self._results.extend(results)
        return results

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def throughput_summary(self) -> Dict[str, float]:
        """Aggregate inferences/sec (wall) and inferences/unit (simulated)."""
        snap = self.metrics.snapshot()["counters"]
        inferences = snap.get("inferences_served", 0)
        sim_busy = snap.get("sim_units_busy", 0)
        wall = self._wall_seconds_served
        return {
            "inferences": float(inferences),
            "sim_throughput": inferences / sim_busy if sim_busy else 0.0,
            "wall_throughput": inferences / wall if wall else 0.0,
        }

    def stats_report(self) -> str:
        """Multi-line operator report: metrics + plan-cache accounting."""
        lines = [self.metrics.render(), ""]
        stats = self.cache.stats
        lines.append(
            f"plan cache: {stats.hits} hits / {stats.misses} misses "
            f"(rate {stats.hit_rate:.2%}), {stats.evictions} evictions, "
            f"{stats.disk_hits} disk hits, {stats.disk_writes} disk writes, "
            f"{stats.compile_seconds:.3f}s compiling"
        )
        summary = self.throughput_summary()
        lines.append(
            f"throughput: {summary['inferences']:.0f} inferences, "
            f"{summary['sim_throughput']:.4f} inf/unit simulated, "
            f"{summary['wall_throughput']:.1f} inf/s wall"
        )
        snap = self.metrics.snapshot()
        faults = snap["counters"].get("faults_observed", 0)
        if faults:
            degraded = snap["gauges"].get("degraded_mode", 0.0)
            lines.append(
                f"fault tolerance: {faults} faults observed, "
                f"{snap['counters'].get('failover_recompiles', 0)} failover "
                f"recompiles, "
                f"{snap['counters'].get('batches_failed_over', 0)} batches "
                f"failed over, degraded_mode={degraded:g}"
            )
        return "\n".join(lines)
