"""Processing engines and the PE array (paper Figure 1).

Each PE integrates a PE FIFO (pFIFO), an ALU datapath, a register file and a
data cache for intermediate CNN processing results; iFIFO/oFIFO carry the
traffic among PEs. For scheduling purposes a PE is a unit-capacity resource
with a busy timeline; for simulation it additionally tracks FIFO occupancy
and local traffic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional, Tuple

from repro.pim.config import ConfigurationError, PimConfig
from repro.pim.stats import TrafficStats


@dataclass(frozen=True)
class FifoEntry:
    """One datum waiting in a FIFO: (edge key, size in bytes)."""

    key: Tuple[int, int]
    size_bytes: int


class Fifo:
    """Bounded FIFO used for pFIFO/iFIFO/oFIFO structures."""

    def __init__(self, depth: int = 16):
        if depth < 1:
            raise ConfigurationError("FIFO depth must be >= 1")
        self.depth = depth
        self._entries: Deque[FifoEntry] = deque()
        self.peak_occupancy = 0
        self.total_pushes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[FifoEntry]:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.depth

    def push(self, entry: FifoEntry) -> None:
        if self.full:
            raise ConfigurationError("FIFO overflow")
        self._entries.append(entry)
        self.total_pushes += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))

    def pop(self) -> FifoEntry:
        if not self._entries:
            raise ConfigurationError("FIFO underflow")
        return self._entries.popleft()

    def pop_matching(self, key: Tuple[int, int]) -> Optional[FifoEntry]:
        """Remove and return the oldest entry staged for ``key``.

        Returns ``None`` when no entry for that key is queued (the datum
        degraded to a direct cache/eDRAM read because the FIFO was full
        at arrival time). Unlike :meth:`pop`, this never discards an
        entry belonging to a different edge.
        """
        for index, entry in enumerate(self._entries):
            if entry.key == key:
                del self._entries[index]
                return entry
        return None

    def clear(self) -> None:
        self._entries.clear()


class ProcessingEngine:
    """One PE: compute resource plus local structures.

    The scheduling view is a busy timeline (`reserve` returns the earliest
    feasible start at or after a requested time). The microarchitectural
    structures (pFIFO, register file size) exist so the simulator can track
    occupancy; they do not constrain the analytic model.
    """

    def __init__(self, pe_id: int, config: PimConfig, fifo_depth: int = 16,
                 register_file_bytes: int = 512):
        if pe_id < 0:
            raise ConfigurationError("pe_id must be >= 0")
        self.pe_id = pe_id
        self.config = config
        self.pfifo = Fifo(fifo_depth)
        self.register_file_bytes = register_file_bytes
        self.stats = TrafficStats()
        self._free_at = 0
        self._busy_units = 0

    @property
    def free_at(self) -> int:
        """Earliest time this PE is idle."""
        return self._free_at

    @property
    def busy_units(self) -> int:
        """Total time units of work executed so far."""
        return self._busy_units

    def utilization(self, horizon: int) -> float:
        """Busy fraction over ``[0, horizon)``."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self._busy_units / horizon)

    def reserve(self, earliest: int, duration: int) -> Tuple[int, int]:
        """Book ``duration`` units at the first idle point >= ``earliest``.

        Returns ``(start, finish)``. PEs execute one operation at a time, so
        the timeline is a single high-water mark.
        """
        if duration <= 0:
            raise ConfigurationError("duration must be positive")
        if earliest < 0:
            raise ConfigurationError("earliest must be >= 0")
        start = max(earliest, self._free_at)
        finish = start + duration
        self._free_at = finish
        self._busy_units += duration
        return start, finish

    def shift_time(self, delta: int) -> None:
        """Translate this PE's clock forward by ``delta`` time units.

        Used by the steady-state engine's fast-forward splice: shifting
        every absolute clock in the machine by the same constant is an
        exact time translation of the simulation.
        """
        if delta < 0:
            raise ConfigurationError("time shift must be >= 0")
        self._free_at += delta

    def relative_state(self, reference: int) -> Tuple[int, Tuple[Tuple[Tuple[int, int], int], ...]]:
        """Behaviour-relevant state relative to ``reference`` time.

        The free-at clock is clamped at zero: a PE idle *before* the
        reference behaves identically no matter how long it has been
        idle, because every future reservation starts at or after the
        reference. The pFIFO content matters (occupancy gates pushes,
        entries are popped by edge key), so it is part of the state.
        """
        return (
            max(self._free_at - reference, 0),
            tuple((entry.key, entry.size_bytes) for entry in self.pfifo),
        )

    def reset(self) -> None:
        self._free_at = 0
        self._busy_units = 0
        self.pfifo.clear()
        self.stats = TrafficStats()


class PEArray:
    """The on-chip array of processing engines."""

    def __init__(self, config: PimConfig):
        self.config = config
        self.pes: List[ProcessingEngine] = [
            ProcessingEngine(pe_id, config) for pe_id in range(config.num_pes)
        ]

    def __len__(self) -> int:
        return len(self.pes)

    def __getitem__(self, pe_id: int) -> ProcessingEngine:
        return self.pes[pe_id]

    def earliest_available(self) -> ProcessingEngine:
        """PE that frees up first (ties broken by lowest id)."""
        return min(self.pes, key=lambda pe: (pe.free_at, pe.pe_id))

    def makespan(self) -> int:
        """Latest busy point across all PEs."""
        return max((pe.free_at for pe in self.pes), default=0)

    def total_stats(self) -> TrafficStats:
        merged = TrafficStats()
        for pe in self.pes:
            merged = merged.merged_with(pe.stats)
        return merged

    def shift_time(self, delta: int) -> None:
        """Translate every PE clock forward by ``delta`` time units."""
        for pe in self.pes:
            pe.shift_time(delta)

    def reset(self) -> None:
        for pe in self.pes:
            pe.reset()
