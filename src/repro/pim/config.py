"""PIM machine configuration (paper Sections 2.1-2.3, 4.1).

The paper evaluates a Neurocube-derived architecture with up to 64
processing engines connected by a crossbar, an aggregate on-chip cache of
100-300 KB for the whole PE array, and stacked eDRAM vaults whose access
costs 2-10x more time and energy than the PE cache. :class:`PimConfig`
captures those parameters plus the translation from intermediate-result
sizes to transfer times in abstract schedule time units.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Optional, Tuple

#: Version tag baked into every fingerprint; bump when a field is added,
#: removed or reinterpreted so stale cached plans can never be confused
#: with plans compiled under the new semantics.
CONFIG_FINGERPRINT_VERSION = 1


#: Mask provenance values (see :attr:`PimConfig.mask_kind`).
MASK_KIND_FAULT = "fault"
MASK_KIND_PARTITION = "partition"


class ConfigurationError(ValueError):
    """Raised for inconsistent machine configurations."""


@dataclass(frozen=True)
class PimConfig:
    """Machine description shared by the analytic model and the simulator.

    Attributes:
        num_pes: number of processing engines (the paper sweeps 16/32/64).
        cache_bytes_per_pe: data-cache capacity of one PE. The default of
            4 KiB yields 64 KiB-256 KiB aggregate across 16-64 PEs, inside
            the paper's 100-300 KB envelope at the upper configurations.
        cache_slot_bytes: allocation granularity of the cache. The dynamic
            program of Section 3.3 runs over slots, keeping the ``B[S, m]``
            table tractable; intermediate results occupy
            ``ceil(size / cache_slot_bytes)`` slots.
        cache_bytes_per_unit: bytes one schedule time unit can move from the
            PE cache into a consuming PE (on-chip path: pFIFO/RF). With the
            default, typical intermediate results transfer in zero whole
            time units -- matching Figure 3, where cache-resident results
            add no delay.
        edram_latency_factor: vault-fetch slowdown relative to cache; the
            paper cites 2-10x.
        edram_energy_factor: vault-fetch energy ratio relative to cache.
        iterations: number of steady-state iterations ``N`` assumed when a
            total execution time is reported (prologue + N kernels).
        pe_mask: for a *degraded* machine, the sorted tuple of surviving
            physical PE ids (relative to the original healthy array);
            ``None`` on a healthy machine. ``num_pes`` always equals the
            survivor count, so the whole compile pipeline (width search
            included) sees a smaller-but-ordinary machine, while the
            fingerprint still distinguishes *which* PEs survived.
        vault_mask: surviving physical eDRAM vault ids of a degraded
            machine (``None`` when all vaults are healthy). The config
            does not own a vault count — the executor does — so the mask
            is carried for identity (fingerprints, plan-cache keys) and
            its length tells the runtime how many vaults to simulate.
        mask_kind: provenance of the masks. ``"fault"`` (the default)
            means the sub-machine exists because units died
            (:meth:`degraded`); ``"partition"`` means it was carved on
            purpose (:meth:`partition` — fleet sharding, multi-tenant
            spatial partitioning). Serialized only when a mask is set and
            the kind is not ``"fault"``, so every pre-existing fingerprint
            (healthy *and* degraded) stays byte-identical.
    """

    num_pes: int = 16
    cache_bytes_per_pe: int = 4096
    cache_slot_bytes: int = 512
    cache_bytes_per_unit: int = 8192
    edram_latency_factor: int = 4
    edram_energy_factor: int = 6
    iterations: int = 1000
    pe_mask: Optional[Tuple[int, ...]] = None
    vault_mask: Optional[Tuple[int, ...]] = None
    mask_kind: str = MASK_KIND_FAULT

    def __post_init__(self) -> None:
        if self.num_pes < 1:
            raise ConfigurationError("num_pes must be >= 1")
        if self.mask_kind not in (MASK_KIND_FAULT, MASK_KIND_PARTITION):
            raise ConfigurationError(
                f"mask_kind must be 'fault' or 'partition', got "
                f"{self.mask_kind!r}"
            )
        for name in ("pe_mask", "vault_mask"):
            mask = getattr(self, name)
            if mask is None:
                continue
            normalized = tuple(sorted(int(u) for u in mask))
            if len(set(normalized)) != len(normalized):
                raise ConfigurationError(f"{name} contains duplicate ids")
            if normalized and normalized[0] < 0:
                raise ConfigurationError(f"{name} ids must be >= 0")
            if not normalized:
                raise ConfigurationError(f"{name} must keep at least one unit")
            object.__setattr__(self, name, normalized)
        if self.pe_mask is not None and len(self.pe_mask) != self.num_pes:
            raise ConfigurationError(
                f"pe_mask lists {len(self.pe_mask)} surviving PEs but "
                f"num_pes is {self.num_pes}"
            )
        if self.cache_bytes_per_pe < 0:
            raise ConfigurationError("cache_bytes_per_pe must be >= 0")
        if self.cache_slot_bytes < 1:
            raise ConfigurationError("cache_slot_bytes must be >= 1")
        if self.cache_bytes_per_unit < 1:
            raise ConfigurationError("cache_bytes_per_unit must be >= 1")
        if not 2 <= self.edram_latency_factor <= 10:
            raise ConfigurationError(
                "edram_latency_factor outside the paper's 2-10x envelope: "
                f"{self.edram_latency_factor}"
            )
        if self.edram_energy_factor < 1:
            raise ConfigurationError("edram_energy_factor must be >= 1")
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")

    # ------------------------------------------------------------------
    # capacities
    # ------------------------------------------------------------------
    @property
    def total_cache_bytes(self) -> int:
        """Aggregate on-chip cache across the PE array."""
        return self.num_pes * self.cache_bytes_per_pe

    @property
    def total_cache_slots(self) -> int:
        """Aggregate cache capacity in allocation slots (DP capacity ``S``)."""
        return self.total_cache_bytes // self.cache_slot_bytes

    def slots_required(self, size_bytes: int) -> int:
        """Cache slots ``sp_m`` an intermediate result of ``size_bytes`` needs."""
        if size_bytes <= 0:
            raise ConfigurationError("size_bytes must be positive")
        return max(1, math.ceil(size_bytes / self.cache_slot_bytes))

    # ------------------------------------------------------------------
    # transfer timing (abstract schedule time units)
    # ------------------------------------------------------------------
    def cache_transfer_units(self, size_bytes: int) -> int:
        """Time units to move an intermediate result via the on-chip cache.

        Zero for results smaller than one unit's worth of on-chip bandwidth:
        the transfer hides inside the producer/consumer occupancy, exactly
        like the cache-resident results of the motivational example.
        """
        if size_bytes <= 0:
            raise ConfigurationError("size_bytes must be positive")
        return size_bytes // self.cache_bytes_per_unit

    def edram_transfer_units(self, size_bytes: int) -> int:
        """Time units to round-trip an intermediate result through eDRAM.

        At least one whole unit (the vault access itself), scaled by the
        2-10x latency factor of the stacked memory path.
        """
        if size_bytes <= 0:
            raise ConfigurationError("size_bytes must be positive")
        scaled = (size_bytes * self.edram_latency_factor) // self.cache_bytes_per_unit
        return max(1, scaled)

    # ------------------------------------------------------------------
    # canonical serialization / fingerprinting
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical dictionary form with stable field ordering.

        The field order is fixed (not reflection-derived) so that the
        JSON rendering — and therefore :meth:`fingerprint` — is stable
        across Python versions and dataclass refactorings. A version tag
        travels with the payload so future field changes invalidate old
        fingerprints instead of silently colliding.

        Degradation masks are emitted *only when set*: a healthy machine
        serializes (and therefore fingerprints) exactly as it did before
        fault tolerance existed, so cached plans and golden fixtures for
        healthy machines stay valid, while every distinct surviving-unit
        mask produces a distinct fingerprint.
        """
        payload: Dict[str, Any] = {
            "fingerprint_version": CONFIG_FINGERPRINT_VERSION,
            "num_pes": self.num_pes,
            "cache_bytes_per_pe": self.cache_bytes_per_pe,
            "cache_slot_bytes": self.cache_slot_bytes,
            "cache_bytes_per_unit": self.cache_bytes_per_unit,
            "edram_latency_factor": self.edram_latency_factor,
            "edram_energy_factor": self.edram_energy_factor,
            "iterations": self.iterations,
        }
        if self.pe_mask is not None:
            payload["pe_mask"] = list(self.pe_mask)
        if self.vault_mask is not None:
            payload["vault_mask"] = list(self.vault_mask)
        if self.has_mask and self.mask_kind != MASK_KIND_FAULT:
            payload["mask_kind"] = self.mask_kind
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PimConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        version = payload.get("fingerprint_version", CONFIG_FINGERPRINT_VERSION)
        if version != CONFIG_FINGERPRINT_VERSION:
            raise ConfigurationError(
                f"unsupported PimConfig payload version {version!r}"
            )
        pe_mask = payload.get("pe_mask")
        vault_mask = payload.get("vault_mask")
        return cls(
            num_pes=int(payload["num_pes"]),
            cache_bytes_per_pe=int(payload["cache_bytes_per_pe"]),
            cache_slot_bytes=int(payload["cache_slot_bytes"]),
            cache_bytes_per_unit=int(payload["cache_bytes_per_unit"]),
            edram_latency_factor=int(payload["edram_latency_factor"]),
            edram_energy_factor=int(payload["edram_energy_factor"]),
            iterations=int(payload["iterations"]),
            pe_mask=tuple(int(p) for p in pe_mask) if pe_mask is not None else None,
            vault_mask=(
                tuple(int(v) for v in vault_mask)
                if vault_mask is not None
                else None
            ),
            mask_kind=str(payload.get("mask_kind", MASK_KIND_FAULT)),
        )

    def fingerprint(self) -> str:
        """Stable content hash of this configuration (hex digest).

        Equal configurations always produce equal fingerprints; any field
        change (or a bump of :data:`CONFIG_FINGERPRINT_VERSION`) produces
        a different one. Used by :mod:`repro.runtime.plan_cache` to key
        compiled plans.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # sub-machine views (degraded / partition)
    # ------------------------------------------------------------------
    @property
    def has_mask(self) -> bool:
        """True when this config describes any sub-machine at all."""
        return self.pe_mask is not None or self.vault_mask is not None

    @property
    def is_degraded(self) -> bool:
        """True when this config is a sub-machine because units *died*."""
        return self.has_mask and self.mask_kind == MASK_KIND_FAULT

    @property
    def is_partition(self) -> bool:
        """True when this config is an intentionally carved partition."""
        return self.has_mask and self.mask_kind == MASK_KIND_PARTITION

    def _masked(
        self,
        unit_ids: Iterable[int],
        vault_ids: Optional[Iterable[int]],
        mask_kind: str,
    ) -> "PimConfig":
        """Shared mask mechanism behind :meth:`degraded` / :meth:`partition`."""
        survivors = sorted(set(int(p) for p in unit_ids))
        if not survivors:
            raise ConfigurationError("at least one PE must survive")
        if survivors[0] < 0 or survivors[-1] >= self.num_pes:
            raise ConfigurationError(
                f"surviving PE ids must be within [0, {self.num_pes}), "
                f"got {survivors}"
            )
        if self.pe_mask is not None:
            pe_mask = tuple(self.pe_mask[p] for p in survivors)
        else:
            pe_mask = tuple(survivors)
        vault_mask = self.vault_mask
        if vault_ids is not None:
            vault_list = sorted(set(int(v) for v in vault_ids))
            if not vault_list:
                raise ConfigurationError("at least one vault must survive")
            if vault_list[0] < 0:
                raise ConfigurationError("surviving vault ids must be >= 0")
            if self.vault_mask is not None:
                if vault_list[-1] >= len(self.vault_mask):
                    raise ConfigurationError(
                        "surviving vault ids must index the current mask"
                    )
                vault_mask = tuple(self.vault_mask[v] for v in vault_list)
            else:
                vault_mask = tuple(vault_list)
        return replace(
            self,
            num_pes=len(pe_mask),
            pe_mask=pe_mask,
            vault_mask=vault_mask,
            mask_kind=mask_kind,
        )

    def degraded(
        self,
        surviving_pes: Iterable[int],
        surviving_vaults: Optional[Iterable[int]] = None,
    ) -> "PimConfig":
        """A reduced-but-valid config for the surviving sub-machine.

        ``surviving_pes`` (and optionally ``surviving_vaults``) are unit
        ids in *this* config's logical space — composition through an
        existing mask is handled here, so degrading an already degraded
        machine keeps the physical-id provenance straight. The result has
        ``num_pes = len(surviving_pes)`` (the aggregate cache shrinks with
        it — a dead PE takes its cache slice with it), passes every
        ordinary validity check, and fingerprints differently for every
        distinct surviving mask, which is what keys degraded plans in the
        plan cache. Degrading a partition marks the result as fault
        provenance: a shard that lost a unit *is* degraded.
        """
        return self._masked(surviving_pes, surviving_vaults, MASK_KIND_FAULT)

    def partition(
        self,
        pe_ids: Iterable[int],
        vault_ids: Optional[Iterable[int]] = None,
    ) -> "PimConfig":
        """An intentionally carved sub-machine (fleet shard, tenant slice).

        Same mask mechanism as :meth:`degraded` — the result is a
        smaller-but-ordinary machine whose fingerprint records *which*
        physical units it owns — but with non-fault provenance:
        ``is_partition`` is true and ``is_degraded`` stays false, so the
        serving runtime does not report a healthy shard as a degraded
        machine. Composes through existing masks (partitioning a
        partition re-maps through the parent's physical ids).
        """
        return self._masked(pe_ids, vault_ids, MASK_KIND_PARTITION)

    def split(
        self, num_partitions: int, num_vaults: Optional[int] = None
    ) -> "list[PimConfig]":
        """Carve this machine into ``num_partitions`` contiguous shards.

        PEs (and, when ``num_vaults`` is given, vaults) are dealt out in
        contiguous runs, earlier shards absorbing the remainder — every
        unit lands in exactly one shard. The shards are
        :meth:`partition` views, so their fingerprints record physical
        ownership while their *logical* shape is an ordinary machine.
        """
        if num_partitions < 1:
            raise ConfigurationError("num_partitions must be >= 1")
        if num_partitions > self.num_pes:
            raise ConfigurationError(
                f"cannot split {self.num_pes} PEs into {num_partitions} "
                f"partitions"
            )
        if num_vaults is not None and num_vaults < num_partitions:
            raise ConfigurationError(
                f"cannot split {num_vaults} vaults into {num_partitions} "
                f"partitions"
            )

        def runs(total: int) -> "list[list[int]]":
            base, extra = divmod(total, num_partitions)
            out, start = [], 0
            for index in range(num_partitions):
                width = base + (1 if index < extra else 0)
                out.append(list(range(start, start + width)))
                start += width
            return out

        pe_runs = runs(self.num_pes)
        vault_runs = (
            runs(num_vaults) if num_vaults is not None
            else [None] * num_partitions
        )
        return [
            self.partition(pes, vaults)
            for pes, vaults in zip(pe_runs, vault_runs)
        ]

    @property
    def logical(self) -> "PimConfig":
        """The shape of this machine with physical placement erased.

        Two shards that own different physical units but the same number
        of PEs/vaults and the same cache parameters have equal logical
        configs — and, because the compile pipeline only reads the
        logical shape, they compile *identical plans*. The fleet keys its
        shared plan store on :meth:`logical_fingerprint` for exactly this
        reason: a plan compiled on any shard is warm on every
        shape-identical shard. A healthy machine is its own logical view.
        """
        if not self.has_mask:
            return self
        return replace(
            self, pe_mask=None, vault_mask=None, mask_kind=MASK_KIND_FAULT
        )

    def logical_fingerprint(self) -> str:
        """Fingerprint of :attr:`logical` (placement-independent identity)."""
        return self.logical.fingerprint()

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def with_pes(self, num_pes: int) -> "PimConfig":
        """Copy of this configuration with a different PE count.

        Degradation masks are dropped: callers use this to carve
        sub-arrays (the executor sizes one PE group with it), where the
        physical-survivor provenance no longer applies. Use
        :meth:`degraded` to *shrink while keeping identity*.
        """
        return replace(self, num_pes=num_pes, pe_mask=None)

    def describe(self) -> str:
        """One-line human-readable summary."""
        base = (
            f"{self.num_pes} PEs, {self.total_cache_bytes // 1024} KiB aggregate "
            f"cache ({self.cache_bytes_per_pe} B/PE, {self.cache_slot_bytes} B "
            f"slots), eDRAM {self.edram_latency_factor}x latency / "
            f"{self.edram_energy_factor}x energy"
        )
        if self.has_mask:
            marks = []
            if self.pe_mask is not None:
                marks.append(f"PEs {list(self.pe_mask)}")
            if self.vault_mask is not None:
                marks.append(f"vaults {list(self.vault_mask)}")
            label = "partition" if self.is_partition else "degraded"
            base += f" [{label}: {', '.join(marks)}]"
        return base


def assert_disjoint(configs: Iterable["PimConfig"]) -> None:
    """Prove a set of sub-machine views shares no physical unit.

    Spatial partitioning (fleet shards, multi-tenant placements) is only
    sound when no physical PE or vault is owned by two views at once — a
    shared unit would make "co-resident aggregates == sum of isolated
    runs" false by construction. This helper is the one place that check
    lives: it maps every config back to *physical* unit ids (``pe_mask``
    when set, else the whole ``0..num_pes-1`` array; ``vault_mask`` when
    set — a view without a vault mask claims no specific vaults) and
    raises :class:`ConfigurationError` naming every overlapping id.

    Deliberately independent of :class:`~repro.pim.tenancy.TenantPlacement`
    so ad-hoc carvings (``PimConfig.split`` results, hand-built
    partitions) can be validated too.
    """
    views = list(configs)
    pe_owners: Dict[int, int] = {}
    vault_owners: Dict[int, int] = {}
    pe_overlap: set = set()
    vault_overlap: set = set()
    for index, view in enumerate(views):
        pes = view.pe_mask if view.pe_mask is not None else range(view.num_pes)
        for pe in pes:
            if pe in pe_owners and pe_owners[pe] != index:
                pe_overlap.add(pe)
            else:
                pe_owners[pe] = index
        if view.vault_mask is not None:
            for vault in view.vault_mask:
                if vault in vault_owners and vault_owners[vault] != index:
                    vault_overlap.add(vault)
                else:
                    vault_owners[vault] = index
    if pe_overlap or vault_overlap:
        parts = []
        if pe_overlap:
            parts.append(f"physical PE ids {sorted(pe_overlap)}")
        if vault_overlap:
            parts.append(f"physical vault ids {sorted(vault_overlap)}")
        raise ConfigurationError(
            "partitions are not disjoint: "
            + " and ".join(parts)
            + " are owned by more than one config"
        )


#: The three PE-array configurations the paper sweeps in every experiment.
PAPER_PE_SWEEP = (16, 32, 64)
