"""PIM machine configuration (paper Sections 2.1-2.3, 4.1).

The paper evaluates a Neurocube-derived architecture with up to 64
processing engines connected by a crossbar, an aggregate on-chip cache of
100-300 KB for the whole PE array, and stacked eDRAM vaults whose access
costs 2-10x more time and energy than the PE cache. :class:`PimConfig`
captures those parameters plus the translation from intermediate-result
sizes to transfer times in abstract schedule time units.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, replace
from typing import Any, Dict

#: Version tag baked into every fingerprint; bump when a field is added,
#: removed or reinterpreted so stale cached plans can never be confused
#: with plans compiled under the new semantics.
CONFIG_FINGERPRINT_VERSION = 1


class ConfigurationError(ValueError):
    """Raised for inconsistent machine configurations."""


@dataclass(frozen=True)
class PimConfig:
    """Machine description shared by the analytic model and the simulator.

    Attributes:
        num_pes: number of processing engines (the paper sweeps 16/32/64).
        cache_bytes_per_pe: data-cache capacity of one PE. The default of
            4 KiB yields 64 KiB-256 KiB aggregate across 16-64 PEs, inside
            the paper's 100-300 KB envelope at the upper configurations.
        cache_slot_bytes: allocation granularity of the cache. The dynamic
            program of Section 3.3 runs over slots, keeping the ``B[S, m]``
            table tractable; intermediate results occupy
            ``ceil(size / cache_slot_bytes)`` slots.
        cache_bytes_per_unit: bytes one schedule time unit can move from the
            PE cache into a consuming PE (on-chip path: pFIFO/RF). With the
            default, typical intermediate results transfer in zero whole
            time units -- matching Figure 3, where cache-resident results
            add no delay.
        edram_latency_factor: vault-fetch slowdown relative to cache; the
            paper cites 2-10x.
        edram_energy_factor: vault-fetch energy ratio relative to cache.
        iterations: number of steady-state iterations ``N`` assumed when a
            total execution time is reported (prologue + N kernels).
    """

    num_pes: int = 16
    cache_bytes_per_pe: int = 4096
    cache_slot_bytes: int = 512
    cache_bytes_per_unit: int = 8192
    edram_latency_factor: int = 4
    edram_energy_factor: int = 6
    iterations: int = 1000

    def __post_init__(self) -> None:
        if self.num_pes < 1:
            raise ConfigurationError("num_pes must be >= 1")
        if self.cache_bytes_per_pe < 0:
            raise ConfigurationError("cache_bytes_per_pe must be >= 0")
        if self.cache_slot_bytes < 1:
            raise ConfigurationError("cache_slot_bytes must be >= 1")
        if self.cache_bytes_per_unit < 1:
            raise ConfigurationError("cache_bytes_per_unit must be >= 1")
        if not 2 <= self.edram_latency_factor <= 10:
            raise ConfigurationError(
                "edram_latency_factor outside the paper's 2-10x envelope: "
                f"{self.edram_latency_factor}"
            )
        if self.edram_energy_factor < 1:
            raise ConfigurationError("edram_energy_factor must be >= 1")
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")

    # ------------------------------------------------------------------
    # capacities
    # ------------------------------------------------------------------
    @property
    def total_cache_bytes(self) -> int:
        """Aggregate on-chip cache across the PE array."""
        return self.num_pes * self.cache_bytes_per_pe

    @property
    def total_cache_slots(self) -> int:
        """Aggregate cache capacity in allocation slots (DP capacity ``S``)."""
        return self.total_cache_bytes // self.cache_slot_bytes

    def slots_required(self, size_bytes: int) -> int:
        """Cache slots ``sp_m`` an intermediate result of ``size_bytes`` needs."""
        if size_bytes <= 0:
            raise ConfigurationError("size_bytes must be positive")
        return max(1, math.ceil(size_bytes / self.cache_slot_bytes))

    # ------------------------------------------------------------------
    # transfer timing (abstract schedule time units)
    # ------------------------------------------------------------------
    def cache_transfer_units(self, size_bytes: int) -> int:
        """Time units to move an intermediate result via the on-chip cache.

        Zero for results smaller than one unit's worth of on-chip bandwidth:
        the transfer hides inside the producer/consumer occupancy, exactly
        like the cache-resident results of the motivational example.
        """
        if size_bytes <= 0:
            raise ConfigurationError("size_bytes must be positive")
        return size_bytes // self.cache_bytes_per_unit

    def edram_transfer_units(self, size_bytes: int) -> int:
        """Time units to round-trip an intermediate result through eDRAM.

        At least one whole unit (the vault access itself), scaled by the
        2-10x latency factor of the stacked memory path.
        """
        if size_bytes <= 0:
            raise ConfigurationError("size_bytes must be positive")
        scaled = (size_bytes * self.edram_latency_factor) // self.cache_bytes_per_unit
        return max(1, scaled)

    # ------------------------------------------------------------------
    # canonical serialization / fingerprinting
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical dictionary form with stable field ordering.

        The field order is fixed (not reflection-derived) so that the
        JSON rendering — and therefore :meth:`fingerprint` — is stable
        across Python versions and dataclass refactorings. A version tag
        travels with the payload so future field changes invalidate old
        fingerprints instead of silently colliding.
        """
        return {
            "fingerprint_version": CONFIG_FINGERPRINT_VERSION,
            "num_pes": self.num_pes,
            "cache_bytes_per_pe": self.cache_bytes_per_pe,
            "cache_slot_bytes": self.cache_slot_bytes,
            "cache_bytes_per_unit": self.cache_bytes_per_unit,
            "edram_latency_factor": self.edram_latency_factor,
            "edram_energy_factor": self.edram_energy_factor,
            "iterations": self.iterations,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PimConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        version = payload.get("fingerprint_version", CONFIG_FINGERPRINT_VERSION)
        if version != CONFIG_FINGERPRINT_VERSION:
            raise ConfigurationError(
                f"unsupported PimConfig payload version {version!r}"
            )
        return cls(
            num_pes=int(payload["num_pes"]),
            cache_bytes_per_pe=int(payload["cache_bytes_per_pe"]),
            cache_slot_bytes=int(payload["cache_slot_bytes"]),
            cache_bytes_per_unit=int(payload["cache_bytes_per_unit"]),
            edram_latency_factor=int(payload["edram_latency_factor"]),
            edram_energy_factor=int(payload["edram_energy_factor"]),
            iterations=int(payload["iterations"]),
        )

    def fingerprint(self) -> str:
        """Stable content hash of this configuration (hex digest).

        Equal configurations always produce equal fingerprints; any field
        change (or a bump of :data:`CONFIG_FINGERPRINT_VERSION`) produces
        a different one. Used by :mod:`repro.runtime.plan_cache` to key
        compiled plans.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def with_pes(self, num_pes: int) -> "PimConfig":
        """Copy of this configuration with a different PE count."""
        return replace(self, num_pes=num_pes)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.num_pes} PEs, {self.total_cache_bytes // 1024} KiB aggregate "
            f"cache ({self.cache_bytes_per_pe} B/PE, {self.cache_slot_bytes} B "
            f"slots), eDRAM {self.edram_latency_factor}x latency / "
            f"{self.edram_energy_factor}x energy"
        )


#: The three PE-array configurations the paper sweeps in every experiment.
PAPER_PE_SWEEP = (16, 32, 64)
