"""PIM machine configuration (paper Sections 2.1-2.3, 4.1).

The paper evaluates a Neurocube-derived architecture with up to 64
processing engines connected by a crossbar, an aggregate on-chip cache of
100-300 KB for the whole PE array, and stacked eDRAM vaults whose access
costs 2-10x more time and energy than the PE cache. :class:`PimConfig`
captures those parameters plus the translation from intermediate-result
sizes to transfer times in abstract schedule time units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


class ConfigurationError(ValueError):
    """Raised for inconsistent machine configurations."""


@dataclass(frozen=True)
class PimConfig:
    """Machine description shared by the analytic model and the simulator.

    Attributes:
        num_pes: number of processing engines (the paper sweeps 16/32/64).
        cache_bytes_per_pe: data-cache capacity of one PE. The default of
            4 KiB yields 64 KiB-256 KiB aggregate across 16-64 PEs, inside
            the paper's 100-300 KB envelope at the upper configurations.
        cache_slot_bytes: allocation granularity of the cache. The dynamic
            program of Section 3.3 runs over slots, keeping the ``B[S, m]``
            table tractable; intermediate results occupy
            ``ceil(size / cache_slot_bytes)`` slots.
        cache_bytes_per_unit: bytes one schedule time unit can move from the
            PE cache into a consuming PE (on-chip path: pFIFO/RF). With the
            default, typical intermediate results transfer in zero whole
            time units -- matching Figure 3, where cache-resident results
            add no delay.
        edram_latency_factor: vault-fetch slowdown relative to cache; the
            paper cites 2-10x.
        edram_energy_factor: vault-fetch energy ratio relative to cache.
        iterations: number of steady-state iterations ``N`` assumed when a
            total execution time is reported (prologue + N kernels).
    """

    num_pes: int = 16
    cache_bytes_per_pe: int = 4096
    cache_slot_bytes: int = 512
    cache_bytes_per_unit: int = 8192
    edram_latency_factor: int = 4
    edram_energy_factor: int = 6
    iterations: int = 1000

    def __post_init__(self) -> None:
        if self.num_pes < 1:
            raise ConfigurationError("num_pes must be >= 1")
        if self.cache_bytes_per_pe < 0:
            raise ConfigurationError("cache_bytes_per_pe must be >= 0")
        if self.cache_slot_bytes < 1:
            raise ConfigurationError("cache_slot_bytes must be >= 1")
        if self.cache_bytes_per_unit < 1:
            raise ConfigurationError("cache_bytes_per_unit must be >= 1")
        if not 2 <= self.edram_latency_factor <= 10:
            raise ConfigurationError(
                "edram_latency_factor outside the paper's 2-10x envelope: "
                f"{self.edram_latency_factor}"
            )
        if self.edram_energy_factor < 1:
            raise ConfigurationError("edram_energy_factor must be >= 1")
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")

    # ------------------------------------------------------------------
    # capacities
    # ------------------------------------------------------------------
    @property
    def total_cache_bytes(self) -> int:
        """Aggregate on-chip cache across the PE array."""
        return self.num_pes * self.cache_bytes_per_pe

    @property
    def total_cache_slots(self) -> int:
        """Aggregate cache capacity in allocation slots (DP capacity ``S``)."""
        return self.total_cache_bytes // self.cache_slot_bytes

    def slots_required(self, size_bytes: int) -> int:
        """Cache slots ``sp_m`` an intermediate result of ``size_bytes`` needs."""
        if size_bytes <= 0:
            raise ConfigurationError("size_bytes must be positive")
        return max(1, math.ceil(size_bytes / self.cache_slot_bytes))

    # ------------------------------------------------------------------
    # transfer timing (abstract schedule time units)
    # ------------------------------------------------------------------
    def cache_transfer_units(self, size_bytes: int) -> int:
        """Time units to move an intermediate result via the on-chip cache.

        Zero for results smaller than one unit's worth of on-chip bandwidth:
        the transfer hides inside the producer/consumer occupancy, exactly
        like the cache-resident results of the motivational example.
        """
        if size_bytes <= 0:
            raise ConfigurationError("size_bytes must be positive")
        return size_bytes // self.cache_bytes_per_unit

    def edram_transfer_units(self, size_bytes: int) -> int:
        """Time units to round-trip an intermediate result through eDRAM.

        At least one whole unit (the vault access itself), scaled by the
        2-10x latency factor of the stacked memory path.
        """
        if size_bytes <= 0:
            raise ConfigurationError("size_bytes must be positive")
        scaled = (size_bytes * self.edram_latency_factor) // self.cache_bytes_per_unit
        return max(1, scaled)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def with_pes(self, num_pes: int) -> "PimConfig":
        """Copy of this configuration with a different PE count."""
        return replace(self, num_pes=num_pes)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.num_pes} PEs, {self.total_cache_bytes // 1024} KiB aggregate "
            f"cache ({self.cache_bytes_per_pe} B/PE, {self.cache_slot_bytes} B "
            f"slots), eDRAM {self.edram_latency_factor}x latency / "
            f"{self.edram_energy_factor}x energy"
        )


#: The three PE-array configurations the paper sweeps in every experiment.
PAPER_PE_SWEEP = (16, 32, 64)
