"""Multi-tenant spatial partitioning of one PIM machine.

ROADMAP item 4(b): several CNNs resident on one machine at once, each
owning a PE/vault partition via the PR 6 mask mechanism. This module is
the *placement* half of that story — pure configuration carving with no
serving-layer dependencies (the scheduler that serves tenants lives in
:mod:`repro.fleet.tenancy`, keeping ``repro.pim`` import-light).

A :class:`TenantPlacement` carves one :class:`~repro.pim.config.PimConfig`
into named :meth:`~repro.pim.config.PimConfig.partition` views and proves
them physically disjoint at construction time via
:func:`~repro.pim.config.assert_disjoint`. Because partition fingerprints
embed the physical ``pe_mask``, each tenant's plans get *distinct cache
identity* even when two tenants own shape-identical slices: the plan
cache can never hand tenant B a plan compiled for tenant A's slice, and
per-tenant compiled state is attributable by fingerprint alone.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .config import ConfigurationError, PimConfig, assert_disjoint

#: Version tag baked into placement fingerprints; bump when the canonical
#: payload changes shape so stale identities can never collide.
PLACEMENT_FINGERPRINT_VERSION = 1


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's claim on the machine, in the base config's id space.

    ``pe_ids`` (and optionally ``vault_ids``) are logical unit ids of the
    *base* config handed to :class:`TenantPlacement`; the placement maps
    them to physical ids through any existing mask via
    :meth:`PimConfig.partition`.
    """

    name: str
    pe_ids: Tuple[int, ...]
    vault_ids: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        object.__setattr__(self, "pe_ids", tuple(int(p) for p in self.pe_ids))
        if self.vault_ids is not None:
            object.__setattr__(
                self, "vault_ids", tuple(int(v) for v in self.vault_ids)
            )


@dataclass(frozen=True)
class TenantPlacement:
    """Named, validated-disjoint carving of one machine into tenant slices.

    Construction proves the invariant the whole tenancy story rests on:
    no physical PE or vault is owned by two tenants. Everything downstream
    (per-tenant compile identity, co-resident == sum-of-isolated
    differentials) is sound *because* this check ran.
    """

    base: PimConfig
    specs: Tuple[TenantSpec, ...]
    #: name -> carved partition view; derived in ``__post_init__``.
    views: Mapping[str, PimConfig] = field(init=False, compare=False)

    def __post_init__(self) -> None:
        if not self.specs:
            raise ConfigurationError("a placement needs at least one tenant")
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ConfigurationError(f"duplicate tenant names: {dupes}")
        views: Dict[str, PimConfig] = {}
        for spec in self.specs:
            views[spec.name] = self.base.partition(spec.pe_ids, spec.vault_ids)
        assert_disjoint(views.values())
        object.__setattr__(self, "views", views)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def even(
        cls,
        base: PimConfig,
        names: Sequence[str],
        num_vaults: Optional[int] = None,
    ) -> "TenantPlacement":
        """Deal the machine out in contiguous equal-ish runs, one per name.

        Mirrors :meth:`PimConfig.split` — earlier tenants absorb the
        remainder, every unit lands in exactly one slice.
        """
        if not names:
            raise ConfigurationError("a placement needs at least one tenant")
        shards = base.split(len(names), num_vaults)
        specs = []
        start = 0
        vault_start = 0
        for name, shard in zip(names, shards):
            specs.append(
                TenantSpec(
                    name=name,
                    pe_ids=tuple(range(start, start + shard.num_pes)),
                    vault_ids=(
                        None
                        if num_vaults is None or shard.vault_mask is None
                        else tuple(
                            range(
                                vault_start,
                                vault_start + len(shard.vault_mask),
                            )
                        )
                    ),
                )
            )
            start += shard.num_pes
            if shard.vault_mask is not None:
                vault_start += len(shard.vault_mask)
        return cls(base=base, specs=tuple(specs))

    @classmethod
    def of(
        cls,
        base: PimConfig,
        assignments: Mapping[str, Iterable[int]],
    ) -> "TenantPlacement":
        """Placement from a ``{name: pe_ids}`` mapping (no vault claims)."""
        specs = tuple(
            TenantSpec(name=name, pe_ids=tuple(pe_ids))
            for name, pe_ids in assignments.items()
        )
        return cls(base=base, specs=specs)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.specs)

    def config_for(self, name: str) -> PimConfig:
        """The tenant's partition view — serve on *this*, not ``.logical``.

        The view's fingerprint embeds the physical ``pe_mask``, which is
        what gives each tenant distinct plan-cache identity. (The fleet's
        shared plan store deliberately keys on the logical fingerprint
        for cross-shard warmth; tenancy wants the opposite — isolation.)
        """
        try:
            return self.views[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown tenant {name!r}; placement has {sorted(self.views)}"
            ) from None

    def items(self) -> List[Tuple[str, PimConfig]]:
        return [(spec.name, self.views[spec.name]) for spec in self.specs]

    def with_degraded(
        self, name: str, surviving_pes: Iterable[int]
    ) -> "TenantPlacement":
        """A new placement where one tenant lost PEs (fault in its slice).

        ``surviving_pes`` are ids in the *tenant's* logical space (0-based
        within its slice), matching :meth:`PimConfig.degraded` semantics.
        The other tenants are untouched — a fault inside one tenant's
        slice must never change a co-resident's identity. The degraded
        view stays disjoint by construction (it shrinks).
        """
        survivors = sorted(set(int(p) for p in surviving_pes))
        new_specs = []
        for spec in self.specs:
            if spec.name != name:
                new_specs.append(spec)
                continue
            if any(p < 0 or p >= len(spec.pe_ids) for p in survivors):
                raise ConfigurationError(
                    f"surviving PE ids must be within "
                    f"[0, {len(spec.pe_ids)}) of tenant {name!r}'s slice, "
                    f"got {survivors}"
                )
            new_specs.append(
                TenantSpec(
                    name=spec.name,
                    pe_ids=tuple(spec.pe_ids[p] for p in survivors),
                    vault_ids=spec.vault_ids,
                )
            )
        if all(spec.name != name for spec in self.specs):
            raise ConfigurationError(
                f"unknown tenant {name!r}; placement has {sorted(self.names)}"
            )
        return TenantPlacement(base=self.base, specs=tuple(new_specs))

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Canonical identity of the whole placement.

        Hashes the base config fingerprint plus every tenant's name and
        carved-view fingerprint in spec order; two placements that carve
        the same machine the same way for the same names are identical,
        and any change to any slice changes the placement identity.
        """
        payload = {
            "version": PLACEMENT_FINGERPRINT_VERSION,
            "base": self.base.fingerprint(),
            "tenants": [
                [spec.name, self.views[spec.name].fingerprint()]
                for spec in self.specs
            ],
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        lines = [f"placement over {self.base.num_pes} PEs:"]
        for spec in self.specs:
            view = self.views[spec.name]
            lines.append(f"  {spec.name}: {view.describe()}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.specs)
