"""Heterogeneous PE arrays (extension).

SPARTA's original domain is *heterogeneous* many-cores; the paper compares
against it on a homogeneous PIM array. This extension closes the loop: a
:class:`HeterogeneousArray` assigns each PE a speed multiplier (e.g. eight
big cores at 1.0 and eight little cores at 0.5), the schedulers account
effective execution times per placement, and the cross-scheme comparison
can be re-run where the baseline is on home turf.

An operation with nominal time ``c`` placed on a PE of speed ``s`` runs
for ``ceil(c / s)`` time units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.pim.config import ConfigurationError, PimConfig


@dataclass(frozen=True)
class HeterogeneousArray:
    """Per-PE speed description layered over a :class:`PimConfig`.

    Attributes:
        config: the machine's memory-system parameters (unchanged).
        speeds: one multiplier per PE, in PE-id order; 1.0 is the nominal
            speed the task graph's execution times assume.
    """

    config: PimConfig
    speeds: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.speeds) != self.config.num_pes:
            raise ConfigurationError(
                f"{len(self.speeds)} speeds for {self.config.num_pes} PEs"
            )
        if any(s <= 0 for s in self.speeds):
            raise ConfigurationError("PE speeds must be positive")

    def effective_time(self, execution_time: int, pe: int) -> int:
        """``ceil(c / speed)`` -- occupancy of an op on a concrete PE."""
        if not 0 <= pe < len(self.speeds):
            raise ConfigurationError(f"unknown PE {pe}")
        return max(1, math.ceil(execution_time / self.speeds[pe]))

    def group(self, pe_ids: Sequence[int]) -> "HeterogeneousArray":
        """Sub-array restricted to ``pe_ids`` (renumbered from zero)."""
        missing = [p for p in pe_ids if not 0 <= p < len(self.speeds)]
        if missing:
            raise ConfigurationError(f"unknown PEs {missing}")
        sub_config = self.config.with_pes(len(pe_ids))
        return HeterogeneousArray(
            config=sub_config,
            speeds=tuple(self.speeds[p] for p in pe_ids),
        )

    @property
    def total_speed(self) -> float:
        return sum(self.speeds)


def big_little(
    config: PimConfig, big_fraction: float = 0.5, little_speed: float = 0.5
) -> HeterogeneousArray:
    """A big.LITTLE-style array: fast PEs first, slow PEs after.

    ``big_fraction`` of the PEs run at speed 1.0, the rest at
    ``little_speed``.
    """
    if not 0 <= big_fraction <= 1:
        raise ConfigurationError("big_fraction must be in [0, 1]")
    if little_speed <= 0:
        raise ConfigurationError("little_speed must be positive")
    num_big = round(config.num_pes * big_fraction)
    speeds = tuple(
        1.0 if index < num_big else little_speed
        for index in range(config.num_pes)
    )
    return HeterogeneousArray(config=config, speeds=speeds)


def homogeneous(config: PimConfig) -> HeterogeneousArray:
    """All PEs at nominal speed (degenerates to the paper's machine)."""
    return HeterogeneousArray(config=config, speeds=(1.0,) * config.num_pes)
