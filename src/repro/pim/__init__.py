"""Neurocube-style 3D processing-in-memory machine model (paper Section 2.1).

The architecture integrates DRAM/eDRAM arrays with an array of processing
engines (PEs) in a 3D stack. Each PE has a pFIFO, an ALU datapath, a
register file and a data cache for intermediate CNN results; iFIFO/oFIFO
carry inter-PE traffic; PEs reach DRAM vaults through TSVs via a crossbar.
Fetching from a DRAM vault costs 2-10x more time and energy than the on-chip
PE cache (Section 2.2), which is what makes intermediate-result placement
worth optimizing.
"""

from repro.pim.config import PimConfig, ConfigurationError, assert_disjoint
from repro.pim.tenancy import TenantPlacement, TenantSpec
from repro.pim.faults import FaultEvent, FaultModel, FaultModelError
from repro.pim.memory import CacheModel, EdramVault, MemorySystem, Placement
from repro.pim.pe import ProcessingEngine, PEArray
from repro.pim.interconnect import Crossbar
from repro.pim.energy import EnergyModel, EnergyReport
from repro.pim.presets import ARCHITECTURES, architecture
from repro.pim.stats import TrafficStats

__all__ = [
    "ARCHITECTURES",
    "CacheModel",
    "ConfigurationError",
    "Crossbar",
    "EdramVault",
    "EnergyModel",
    "EnergyReport",
    "FaultEvent",
    "FaultModel",
    "FaultModelError",
    "MemorySystem",
    "PEArray",
    "PimConfig",
    "Placement",
    "ProcessingEngine",
    "TenantPlacement",
    "TenantSpec",
    "TrafficStats",
    "architecture",
    "assert_disjoint",
]
