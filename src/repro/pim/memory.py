"""Memory hierarchy models: PE data cache and stacked eDRAM vaults.

The analytic Para-CONV model only needs capacities and transfer-time ratios
(:class:`repro.pim.config.PimConfig`); the discrete-event simulator uses the
stateful models here to track residency, evictions and per-level traffic.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable, List, Tuple

from repro.pim.config import ConfigurationError, PimConfig
from repro.pim.stats import TrafficStats


class Placement(enum.Enum):
    """Where an intermediate processing result lives."""

    CACHE = "cache"
    EDRAM = "edram"


class CacheModel:
    """Slot-granular on-chip cache with LRU eviction.

    Models the data cache of the PE array that stores intermediate CNN
    processing results. Capacity is expressed in allocation slots (see
    :attr:`PimConfig.cache_slot_bytes`); entries are keyed by arbitrary
    hashable identifiers (edge keys in practice).
    """

    def __init__(self, capacity_slots: int):
        if capacity_slots < 0:
            raise ConfigurationError("capacity_slots must be >= 0")
        self.capacity_slots = capacity_slots
        self._resident: "OrderedDict[Hashable, int]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def used_slots(self) -> int:
        return self._used

    @property
    def free_slots(self) -> int:
        return self.capacity_slots - self._used

    def contains(self, key: Hashable) -> bool:
        return key in self._resident

    def fits(self, slots: int) -> bool:
        """Whether ``slots`` more slots fit without eviction."""
        return slots <= self.free_slots

    def touch(self, key: Hashable) -> bool:
        """Record an access; returns True on hit (and refreshes LRU order)."""
        if key in self._resident:
            self._resident.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, key: Hashable, slots: int, evict: bool = True) -> List[Hashable]:
        """Insert an entry, optionally evicting LRU entries to make room.

        Returns the list of evicted keys. Raises if the entry can never fit
        or if ``evict`` is False and there is no room.
        """
        if slots < 1:
            raise ConfigurationError("entry must occupy at least one slot")
        if slots > self.capacity_slots:
            raise ConfigurationError(
                f"entry of {slots} slots exceeds cache capacity "
                f"{self.capacity_slots}"
            )
        if key in self._resident:
            raise ConfigurationError(f"key {key!r} already resident")
        evicted: List[Hashable] = []
        while self._used + slots > self.capacity_slots:
            if not evict:
                raise ConfigurationError(
                    f"no room for {slots} slots and eviction disabled"
                )
            victim, victim_slots = self._resident.popitem(last=False)
            self._used -= victim_slots
            self.evictions += 1
            evicted.append(victim)
        self._resident[key] = slots
        self._used += slots
        return evicted

    def remove(self, key: Hashable) -> None:
        """Explicitly free an entry (consumer finished with the data)."""
        try:
            slots = self._resident.pop(key)
        except KeyError:
            raise ConfigurationError(f"key {key!r} not resident") from None
        self._used -= slots

    def resident_keys(self) -> List[Hashable]:
        return list(self._resident)

    def relabel(self, mapping: "dict[Hashable, Hashable]") -> None:
        """Rename resident keys in place, preserving LRU order.

        Used by the steady-state engine's fast-forward splice, which
        relabels the logical-iteration component of live entries' keys.
        Keys absent from ``mapping`` keep their name.
        """
        renamed: "OrderedDict[Hashable, int]" = OrderedDict()
        for key, slots in self._resident.items():
            new_key = mapping.get(key, key)
            if new_key in renamed:
                raise ConfigurationError(
                    f"relabel collision on key {new_key!r}"
                )
            renamed[new_key] = slots
        self._resident = renamed

    def clear(self) -> None:
        self._resident.clear()
        self._used = 0


class EdramVault:
    """One TSV-attached eDRAM vault of the 3D stack.

    Capacity is effectively unbounded relative to intermediate-result
    working sets; the model tracks access counts and busy time so the
    simulator can account vault contention and the energy model can price
    the off-PE traffic.
    """

    def __init__(self, vault_id: int, bytes_per_unit: int):
        if bytes_per_unit < 1:
            raise ConfigurationError("bytes_per_unit must be >= 1")
        self.vault_id = vault_id
        self.bytes_per_unit = bytes_per_unit
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self._free_at = 0

    def access_time(self, size_bytes: int) -> int:
        """Service time (time units) for one access, at least one unit."""
        if size_bytes <= 0:
            raise ConfigurationError("size_bytes must be positive")
        return max(1, size_bytes // self.bytes_per_unit)

    def read(self, size_bytes: int, now: int) -> int:
        """Issue a read at ``now``; returns completion time (with queueing)."""
        self.reads += 1
        self.bytes_read += size_bytes
        start = max(now, self._free_at)
        self._free_at = start + self.access_time(size_bytes)
        return self._free_at

    def write(self, size_bytes: int, now: int) -> int:
        """Issue a write at ``now``; returns completion time (with queueing)."""
        self.writes += 1
        self.bytes_written += size_bytes
        start = max(now, self._free_at)
        self._free_at = start + self.access_time(size_bytes)
        return self._free_at

    @property
    def busy_until(self) -> int:
        """Earliest time this vault can service the next access."""
        return self._free_at

    def shift_time(self, delta: int) -> None:
        """Translate this vault's service clock forward by ``delta``."""
        if delta < 0:
            raise ConfigurationError("time shift must be >= 0")
        self._free_at += delta

    def relative_busy(self, reference: int) -> int:
        """Queue backlog relative to ``reference`` (idle clamps to zero)."""
        return max(self._free_at - reference, 0)

    def reset(self) -> None:
        self.reads = self.writes = 0
        self.bytes_read = self.bytes_written = 0
        self._free_at = 0


@dataclass
class MemorySystem:
    """Aggregate cache + vault hierarchy for one machine instance."""

    config: PimConfig
    num_vaults: int = 16
    cache: CacheModel = field(init=False)
    vaults: List[EdramVault] = field(init=False)
    stats: TrafficStats = field(init=False)

    def __post_init__(self) -> None:
        if self.num_vaults < 1:
            raise ConfigurationError("num_vaults must be >= 1")
        self.cache = CacheModel(self.config.total_cache_slots)
        effective = max(
            1, self.config.cache_bytes_per_unit // self.config.edram_latency_factor
        )
        self.vaults = [EdramVault(v, effective) for v in range(self.num_vaults)]
        self.stats = TrafficStats()

    def vault_for(self, key: Tuple[int, int]) -> EdramVault:
        """Static address-interleaved vault assignment for an edge key."""
        return self.vaults[hash(key) % self.num_vaults]

    def record_cache_transfer(self, size_bytes: int) -> None:
        self.stats.cache_accesses += 1
        self.stats.cache_bytes += size_bytes

    def record_edram_transfer(self, size_bytes: int) -> None:
        self.stats.edram_accesses += 1
        self.stats.edram_bytes += size_bytes

    def shift_time(self, delta: int) -> None:
        """Translate every vault clock forward by ``delta`` time units."""
        for vault in self.vaults:
            vault.shift_time(delta)

    def reset(self) -> None:
        self.cache.clear()
        for vault in self.vaults:
            vault.reset()
        self.stats = TrafficStats()
