"""Crossbar interconnect between PEs and eDRAM vaults (paper Section 4.1).

The evaluated architecture connects up to 64 PEs to the stacked memory
through a crossbar. The model here is port-based: every PE has one
injection port and every vault one service port; a transfer occupies both
for its duration, so independent (PE, vault) pairs proceed concurrently
while conflicting requests serialize -- the first-order behaviour that
matters for intermediate-result traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.pim.config import ConfigurationError


@dataclass(frozen=True)
class TransferRecord:
    """One completed crossbar transfer (for traces and tests)."""

    source: int
    destination: int
    size_bytes: int
    start: int
    finish: int


class Crossbar:
    """Conflict-free crossbar with per-port serialization.

    ``num_inputs`` PE-side ports, ``num_outputs`` vault-side ports. A
    transfer of ``n`` time units issued at time ``t`` starts at the first
    instant both ports are free and holds them until completion.
    """

    def __init__(self, num_inputs: int, num_outputs: int,
                 keep_records: bool = True):
        if num_inputs < 1 or num_outputs < 1:
            raise ConfigurationError("crossbar needs >= 1 port on each side")
        self.num_inputs = num_inputs
        self.num_outputs = num_outputs
        #: set False for long simulations: the per-transfer record list is
        #: O(number of transfers) and exists for traces and tests only.
        self.keep_records = keep_records
        self._input_free = [0] * num_inputs
        self._output_free = [0] * num_outputs
        self.records: List[TransferRecord] = []

    def transfer(
        self, source: int, destination: int, duration: int, now: int,
        size_bytes: int = 0,
    ) -> Tuple[int, int]:
        """Schedule a transfer; returns ``(start, finish)``."""
        if not 0 <= source < self.num_inputs:
            raise ConfigurationError(f"bad source port {source}")
        if not 0 <= destination < self.num_outputs:
            raise ConfigurationError(f"bad destination port {destination}")
        if duration < 0:
            raise ConfigurationError("duration must be >= 0")
        start = max(now, self._input_free[source], self._output_free[destination])
        finish = start + duration
        self._input_free[source] = finish
        self._output_free[destination] = finish
        if self.keep_records:
            self.records.append(
                TransferRecord(source, destination, size_bytes, start, finish)
            )
        return start, finish

    def port_pressure(self) -> Dict[str, int]:
        """Latest free times per side; a congestion indicator for reports."""
        return {
            "max_input_busy_until": max(self._input_free),
            "max_output_busy_until": max(self._output_free),
        }

    def shift_time(self, delta: int) -> None:
        """Translate every port clock forward by ``delta`` time units."""
        if delta < 0:
            raise ConfigurationError("time shift must be >= 0")
        self._input_free = [t + delta for t in self._input_free]
        self._output_free = [t + delta for t in self._output_free]

    def relative_state(
        self, reference: int
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Port busy-times relative to ``reference`` (idle clamps to 0)."""
        return (
            tuple(max(t - reference, 0) for t in self._input_free),
            tuple(max(t - reference, 0) for t in self._output_free),
        )

    def reset(self) -> None:
        self._input_free = [0] * self.num_inputs
        self._output_free = [0] * self.num_outputs
        self.records.clear()
