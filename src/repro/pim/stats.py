"""Traffic and utilization counters shared by the machine models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class TrafficStats:
    """Per-run counters of data movement through the memory hierarchy.

    ``cache_*`` counts on-chip transfers (PE cache / pFIFO path);
    ``edram_*`` counts off-PE transfers through the TSVs to the stacked
    eDRAM vaults -- the quantity Para-CONV minimizes.
    """

    cache_accesses: int = 0
    cache_bytes: int = 0
    edram_accesses: int = 0
    edram_bytes: int = 0
    alu_ops: int = 0
    fifo_pushes: int = 0

    @property
    def total_accesses(self) -> int:
        return self.cache_accesses + self.edram_accesses

    @property
    def total_bytes(self) -> int:
        return self.cache_bytes + self.edram_bytes

    @property
    def offchip_fraction(self) -> float:
        """Fraction of moved bytes served by eDRAM (0.0 when idle)."""
        total = self.total_bytes
        return self.edram_bytes / total if total else 0.0

    def merged_with(self, other: "TrafficStats") -> "TrafficStats":
        """Element-wise sum, for aggregating per-PE stats."""
        return TrafficStats(
            cache_accesses=self.cache_accesses + other.cache_accesses,
            cache_bytes=self.cache_bytes + other.cache_bytes,
            edram_accesses=self.edram_accesses + other.edram_accesses,
            edram_bytes=self.edram_bytes + other.edram_bytes,
            alu_ops=self.alu_ops + other.alu_ops,
            fifo_pushes=self.fifo_pushes + other.fifo_pushes,
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "cache_accesses": self.cache_accesses,
            "cache_bytes": self.cache_bytes,
            "edram_accesses": self.edram_accesses,
            "edram_bytes": self.edram_bytes,
            "alu_ops": self.alu_ops,
            "fifo_pushes": self.fifo_pushes,
        }
