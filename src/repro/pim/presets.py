"""Architecture presets: the paper's future-work generality, made concrete.

Section 5 plans "a general model that can be adaptively applied to
different system architectures". Para-CONV's inputs are exactly the
parameters of :class:`repro.pim.config.PimConfig`, so adapting it to
another PIM organization is a matter of instantiating the model with that
architecture's ratios. The presets below are representative design points
drawn from the literature the paper cites:

* ``neurocube`` -- the paper's own evaluation platform [8]: HMC-style 3D
  stack, moderate eDRAM distance (4x), 4 KiB data cache per PE.
* ``eyeriss_like`` -- a spatial accelerator flavor [3]: generous on-chip
  storage per PE, relatively expensive off-chip path.
* ``rram_pim`` -- a PRIME-style resistive-memory design point [4]: compute
  sits *in* the memory arrays, so the "off-PE" path is cheap (2x) but the
  per-PE buffer is tiny.
* ``edge_pim`` -- a constrained embedded stack: slow (8x) vault path and a
  small cache.

Every preset is an ordinary :class:`PimConfig`; the comparison experiment
(:mod:`repro.eval.architectures`) runs the unchanged pipeline on each.
"""

from __future__ import annotations

from typing import Dict, List

from repro.pim.config import ConfigurationError, PimConfig

ARCHITECTURES: Dict[str, PimConfig] = {
    "neurocube": PimConfig(
        num_pes=16,
        cache_bytes_per_pe=4096,
        edram_latency_factor=4,
        edram_energy_factor=6,
    ),
    "eyeriss_like": PimConfig(
        num_pes=16,
        cache_bytes_per_pe=8192,
        edram_latency_factor=6,
        edram_energy_factor=10,
    ),
    "rram_pim": PimConfig(
        num_pes=16,
        cache_bytes_per_pe=1024,
        edram_latency_factor=2,
        edram_energy_factor=2,
    ),
    "edge_pim": PimConfig(
        num_pes=16,
        cache_bytes_per_pe=2048,
        edram_latency_factor=8,
        edram_energy_factor=8,
    ),
}


def architecture(name: str, num_pes: int = None) -> PimConfig:
    """Look up a preset, optionally overriding the PE count."""
    try:
        config = ARCHITECTURES[name]
    except KeyError:
        known = ", ".join(sorted(ARCHITECTURES))
        raise ConfigurationError(
            f"unknown architecture {name!r}; known: {known}"
        ) from None
    if num_pes is not None:
        config = config.with_pes(num_pes)
    return config


def architecture_names() -> List[str]:
    return list(ARCHITECTURES)
