"""Energy accounting (the paper's stated future work, built as an extension).

Per-access energies follow the relative costs the paper cites: a DRAM-vault
access costs several times an on-chip cache access (Section 2.2, refs
[7, 14]). Absolute values are representative DESTINY-style numbers in
picojoules; only the ratios matter for the comparisons we report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pim.config import PimConfig
from repro.pim.stats import TrafficStats


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one run, in picojoules."""

    cache_pj: float
    edram_pj: float
    compute_pj: float

    @property
    def total_pj(self) -> float:
        return self.cache_pj + self.edram_pj + self.compute_pj

    @property
    def movement_pj(self) -> float:
        """Data-movement energy only (what Para-CONV optimizes)."""
        return self.cache_pj + self.edram_pj

    def as_dict(self) -> dict:
        return {
            "cache_pj": self.cache_pj,
            "edram_pj": self.edram_pj,
            "compute_pj": self.compute_pj,
            "total_pj": self.total_pj,
        }


@dataclass(frozen=True)
class EnergyModel:
    """Linear per-byte / per-op energy model.

    Attributes:
        cache_pj_per_byte: energy to move one byte through the PE cache path.
        alu_pj_per_op: energy of one ALU operation.
    """

    cache_pj_per_byte: float = 1.0
    alu_pj_per_op: float = 0.5

    def edram_pj_per_byte(self, config: PimConfig) -> float:
        """eDRAM per-byte energy scaled by the configured vault ratio."""
        return self.cache_pj_per_byte * config.edram_energy_factor

    def estimate(self, stats: TrafficStats, config: PimConfig) -> EnergyReport:
        """Price a traffic-counter snapshot."""
        return EnergyReport(
            cache_pj=stats.cache_bytes * self.cache_pj_per_byte,
            edram_pj=stats.edram_bytes * self.edram_pj_per_byte(config),
            compute_pj=stats.alu_ops * self.alu_pj_per_op,
        )
