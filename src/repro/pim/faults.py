"""PE/vault fault models for degraded-mode operation.

Real 3D-stacked PIM parts lose processing engines and eDRAM vaults to
thermal stress and wear-out; a production serving system must keep
answering requests on the surviving sub-array. This module describes
*what fails and when* so the rest of the stack can react:

* a :class:`FaultModel` carries **static masks** (units dead before the
  run starts) and a **seeded trace** of :class:`FaultEvent` records that
  strike at iteration boundaries of the steady-state schedule;
* :meth:`PimConfig.degraded` (see :mod:`repro.pim.config`) turns a
  surviving-unit mask into a reduced-but-valid machine description whose
  fingerprint reflects the mask, so degraded plans get their own
  plan-cache identity;
* the discrete-event executor consumes the model and raises
  :class:`repro.sim.executor.PeFaultError` the moment a scheduled
  operation lands on a dead PE or a transfer touches a dead vault;
* the serving runtime catches that error, recompiles against the
  degraded configuration and replays the batch (see
  :mod:`repro.runtime.session`).

Unit-id spaces. Fault unit ids always refer to the *current logical*
machine: PEs ``0 .. num_pes-1`` and vaults ``0 .. num_vaults-1`` of the
machine the executor is simulating. After a failover the machine is
compacted (survivors renumbered from zero); :meth:`FaultModel.compacted`
translates a model into that new space, dropping faults on units that no
longer exist.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.pim.config import ConfigurationError

__all__ = [
    "FAULT_UNIT_PE",
    "FAULT_UNIT_VAULT",
    "FaultEvent",
    "FaultModel",
    "FaultModelError",
]

#: Canonical unit names used across the stack.
FAULT_UNIT_PE = "pe"
FAULT_UNIT_VAULT = "vault"
_UNITS = (FAULT_UNIT_PE, FAULT_UNIT_VAULT)


class FaultModelError(ConfigurationError):
    """Raised for inconsistent fault descriptions."""


@dataclass(frozen=True)
class FaultEvent:
    """One unit failing at an iteration boundary.

    ``iteration`` is the 1-based machine-state round at whose *start* the
    unit stops responding (0 behaves like a static failure: dead before
    round 1). The unit stays dead for the remainder of the run — faults
    are permanent, matching the wear-out/thermal model.
    """

    iteration: int
    unit: str
    unit_id: int

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise FaultModelError(
                f"fault iteration must be >= 0, got {self.iteration}"
            )
        if self.unit not in _UNITS:
            raise FaultModelError(
                f"fault unit must be one of {_UNITS}, got {self.unit!r}"
            )
        if self.unit_id < 0:
            raise FaultModelError(
                f"fault unit_id must be >= 0, got {self.unit_id}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "iteration": self.iteration,
            "unit": self.unit,
            "unit_id": self.unit_id,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultEvent":
        return cls(
            iteration=int(payload["iteration"]),
            unit=str(payload["unit"]),
            unit_id=int(payload["unit_id"]),
        )


@dataclass(frozen=True)
class FaultModel:
    """Static failure masks plus a trace of timed fault events.

    Attributes:
        failed_pes: PEs dead before the run starts (logical ids).
        failed_vaults: vaults dead before the run starts (logical ids).
        events: fault events striking at iteration boundaries, kept in
            canonical ``(iteration, unit, unit_id)`` order. Duplicate
            events collapse (a unit can only die once).
    """

    failed_pes: FrozenSet[int] = field(default_factory=frozenset)
    failed_vaults: FrozenSet[int] = field(default_factory=frozenset)
    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "failed_pes", frozenset(self.failed_pes))
        object.__setattr__(self, "failed_vaults", frozenset(self.failed_vaults))
        if any(p < 0 for p in self.failed_pes):
            raise FaultModelError("failed_pes must be non-negative ids")
        if any(v < 0 for v in self.failed_vaults):
            raise FaultModelError("failed_vaults must be non-negative ids")
        seen = set()
        ordered = []
        for event in sorted(
            self.events, key=lambda e: (e.iteration, e.unit, e.unit_id)
        ):
            if not isinstance(event, FaultEvent):  # defensive: tuples slip in
                raise FaultModelError(f"not a FaultEvent: {event!r}")
            identity = (event.unit, event.unit_id)
            if identity in seen:
                continue  # a unit dies once; the earliest event wins
            statically_dead = (
                event.unit_id in self.failed_pes
                if event.unit == FAULT_UNIT_PE
                else event.unit_id in self.failed_vaults
            )
            if statically_dead:
                continue  # already dead at t=0; the event is redundant
            seen.add(identity)
            ordered.append(event)
        object.__setattr__(self, "events", tuple(ordered))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultModel":
        """The healthy machine: nothing ever fails."""
        return cls()

    @classmethod
    def static(
        cls,
        failed_pes: Iterable[int] = (),
        failed_vaults: Iterable[int] = (),
    ) -> "FaultModel":
        """Units dead from the start, no timed events."""
        return cls(
            failed_pes=frozenset(failed_pes),
            failed_vaults=frozenset(failed_vaults),
        )

    @classmethod
    def single(
        cls, unit: str, unit_id: int, iteration: int
    ) -> "FaultModel":
        """One unit failing at one iteration boundary."""
        return cls(events=(FaultEvent(iteration, unit, unit_id),))

    @classmethod
    def random_trace(
        cls,
        seed: int,
        num_pes: int,
        num_vaults: int = 0,
        num_events: int = 1,
        max_iteration: int = 100,
        vault_fault_probability: float = 0.25,
    ) -> "FaultModel":
        """Seeded fault trace: reproducible chaos for soak tests.

        Draws ``num_events`` distinct unit failures uniformly over the
        iteration range ``[1, max_iteration]``. The same seed always
        produces the same trace, so failures seen in CI replay locally.
        """
        if num_pes < 1:
            raise FaultModelError("num_pes must be >= 1")
        if num_vaults < 0:
            raise FaultModelError("num_vaults must be >= 0")
        if max_iteration < 1:
            raise FaultModelError("max_iteration must be >= 1")
        rng = random.Random(seed)
        candidates = [(FAULT_UNIT_PE, p) for p in range(num_pes)]
        if num_vaults and rng.random() < vault_fault_probability:
            candidates += [(FAULT_UNIT_VAULT, v) for v in range(num_vaults)]
        rng.shuffle(candidates)
        events = tuple(
            FaultEvent(rng.randint(1, max_iteration), unit, unit_id)
            for unit, unit_id in candidates[: max(0, num_events)]
        )
        return cls(events=events)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def is_trivial(self) -> bool:
        """True when nothing ever fails under this model."""
        return (
            not self.failed_pes and not self.failed_vaults and not self.events
        )

    def mask_at(
        self, iteration: int
    ) -> Tuple[FrozenSet[int], FrozenSet[int]]:
        """``(failed_pes, failed_vaults)`` active at round ``iteration``.

        Includes the static masks plus every event whose boundary is at
        or before ``iteration`` — faults are permanent, so the mask is
        monotone in ``iteration``.
        """
        pes = set(self.failed_pes)
        vaults = set(self.failed_vaults)
        for event in self.events:
            if event.iteration > iteration:
                break  # events are iteration-sorted
            if event.unit == FAULT_UNIT_PE:
                pes.add(event.unit_id)
            else:
                vaults.add(event.unit_id)
        return frozenset(pes), frozenset(vaults)

    def next_event_after(self, iteration: int) -> Optional[int]:
        """Earliest event boundary strictly after ``iteration`` (or None).

        The steady-state engine uses this to cap its O(1) fast-forward:
        convergence fingerprints are invalid across a fault boundary, so
        the splice must never jump one.
        """
        for event in self.events:
            if event.iteration > iteration:
                return event.iteration
        return None

    def fault_iteration_of(self, unit: str, unit_id: int) -> int:
        """Boundary at which ``(unit, unit_id)`` dies (0 for static)."""
        if unit == FAULT_UNIT_PE and unit_id in self.failed_pes:
            return 0
        if unit == FAULT_UNIT_VAULT and unit_id in self.failed_vaults:
            return 0
        for event in self.events:
            if event.unit == unit and event.unit_id == unit_id:
                return event.iteration
        raise FaultModelError(f"no fault recorded for {unit} {unit_id}")

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------
    def compacted(
        self,
        surviving_pes: Sequence[int],
        surviving_vaults: Sequence[int],
    ) -> "FaultModel":
        """Translate this model into a compacted survivor id space.

        ``surviving_pes`` / ``surviving_vaults`` list the unit ids (in
        this model's space) that remain after a failover; survivor ``k``
        becomes unit ``index-of-k`` in the new machine. Static masks and
        events naming removed units are dropped — they already did their
        damage — while faults on surviving units carry over with their
        iteration boundaries intact, so a later second failure still
        strikes the replayed run.
        """
        pe_index = {p: i for i, p in enumerate(sorted(set(surviving_pes)))}
        vault_index = {v: i for i, v in enumerate(sorted(set(surviving_vaults)))}
        events = []
        for event in self.events:
            index = pe_index if event.unit == FAULT_UNIT_PE else vault_index
            if event.unit_id in index:
                events.append(
                    FaultEvent(event.iteration, event.unit, index[event.unit_id])
                )
        return FaultModel(
            failed_pes=frozenset(
                pe_index[p] for p in self.failed_pes if p in pe_index
            ),
            failed_vaults=frozenset(
                vault_index[v] for v in self.failed_vaults if v in vault_index
            ),
            events=tuple(events),
        )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "failed_pes": sorted(self.failed_pes),
            "failed_vaults": sorted(self.failed_vaults),
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultModel":
        return cls(
            failed_pes=frozenset(int(p) for p in payload.get("failed_pes", [])),
            failed_vaults=frozenset(
                int(v) for v in payload.get("failed_vaults", [])
            ),
            events=tuple(
                FaultEvent.from_dict(e) for e in payload.get("events", [])
            ),
        )

    def fingerprint(self) -> str:
        """Stable content hash (for logs and degraded-plan bookkeeping)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.is_trivial:
            return "no faults"
        parts = []
        if self.failed_pes:
            parts.append(f"static dead PEs {sorted(self.failed_pes)}")
        if self.failed_vaults:
            parts.append(f"static dead vaults {sorted(self.failed_vaults)}")
        for event in self.events:
            parts.append(
                f"{event.unit} {event.unit_id} dies at iteration "
                f"{event.iteration}"
            )
        return "; ".join(parts)
