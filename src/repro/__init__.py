"""Para-CONV: parallelism for convolutional connections in PIM architecture.

This package reproduces the system described in "Exploiting Parallelism for
Convolutional Connections in Processing-In-Memory Architecture" (DAC 2017).
It provides:

* :mod:`repro.graph` -- the periodic task-graph application model,
* :mod:`repro.cnn` -- a CNN layer algebra and graph partitioner,
* :mod:`repro.pim` -- a Neurocube-style 3D PIM machine model,
* :mod:`repro.sim` -- a discrete-event simulator for periodic schedules,
* :mod:`repro.core` -- retiming, the dynamic-programming data allocator,
  schedulers, the Para-CONV pipeline and the SPARTA baseline,
* :mod:`repro.eval` -- the experiment harness regenerating every table and
  figure of the paper's evaluation section,
* :mod:`repro.runtime` -- the compile-once inference-serving runtime
  (plan cache, sessions, batching request scheduler, metrics).

Quickstart::

    from repro import ParaConv, PimConfig, synthetic_benchmark

    graph = synthetic_benchmark("flower")
    result = ParaConv(PimConfig(num_pes=32)).run(graph)
    print(result.summary())
"""

from repro.graph.taskgraph import (
    IntermediateResult,
    Operation,
    OperationKind,
    TaskGraph,
)
from repro.graph.generators import synthetic_benchmark, SyntheticGraphGenerator
from repro.pim.config import PimConfig
from repro.core.paraconv import ParaConv, ParaConvResult
from repro.core.baseline import SpartaScheduler
from repro.cnn.workloads import load_workload, WORKLOADS
from repro.runtime.plan_cache import PlanCache
from repro.runtime.server import BatchingServer, QueueFullError
from repro.runtime.session import InferenceSession

__version__ = "1.1.0"

__all__ = [
    "BatchingServer",
    "InferenceSession",
    "IntermediateResult",
    "PlanCache",
    "QueueFullError",
    "Operation",
    "OperationKind",
    "ParaConv",
    "ParaConvResult",
    "PimConfig",
    "SpartaScheduler",
    "SyntheticGraphGenerator",
    "TaskGraph",
    "WORKLOADS",
    "load_workload",
    "synthetic_benchmark",
    "__version__",
]
