"""JSON (de)serialization for task graphs.

A stable on-disk format lets experiments pin exact workloads and lets users
bring their own graphs to the Para-CONV pipeline::

    {"name": "...", "period_hint": null,
     "operations": [{"op_id": 0, "name": "conv1", "kind": "conv",
                     "execution_time": 2, "work": 0}, ...],
     "edges": [{"producer": 0, "consumer": 1, "size_bytes": 1024,
                "profit_cache": 10, "profit_edram": 1}, ...]}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.graph.taskgraph import (
    GraphValidationError,
    IntermediateResult,
    Operation,
    OperationKind,
    TaskGraph,
)

FORMAT_VERSION = 1


def graph_to_dict(graph: TaskGraph) -> Dict[str, Any]:
    """Serialize ``graph`` to a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "period_hint": graph.period_hint,
        # fused_count emitted only when non-default so files written
        # before fused lowering existed round-trip byte-identically.
        "operations": [
            {
                "op_id": op.op_id,
                "name": op.name,
                "kind": op.kind.value,
                "execution_time": op.execution_time,
                "work": op.work,
                **(
                    {"fused_count": op.fused_count}
                    if op.fused_count != 1
                    else {}
                ),
            }
            for op in graph.operations()
        ],
        "edges": [
            {
                "producer": e.producer,
                "consumer": e.consumer,
                "size_bytes": e.size_bytes,
                "profit_cache": e.profit_cache,
                "profit_edram": e.profit_edram,
            }
            for e in graph.edges()
        ],
    }


def graph_from_dict(payload: Dict[str, Any]) -> TaskGraph:
    """Deserialize a graph produced by :func:`graph_to_dict`."""
    version = payload.get("format_version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise GraphValidationError(
            f"unsupported task-graph format version {version}"
        )
    graph = TaskGraph(
        name=payload.get("name", "taskgraph"),
        period_hint=payload.get("period_hint"),
    )
    for record in payload.get("operations", []):
        graph.add_operation(
            Operation(
                op_id=int(record["op_id"]),
                name=record.get("name", ""),
                kind=OperationKind(record.get("kind", "conv")),
                execution_time=int(record.get("execution_time", 1)),
                work=int(record.get("work", 0)),
                fused_count=int(record.get("fused_count", 1)),
            )
        )
    for record in payload.get("edges", []):
        graph.add_edge(
            IntermediateResult(
                producer=int(record["producer"]),
                consumer=int(record["consumer"]),
                size_bytes=int(record.get("size_bytes", 1)),
                profit_cache=int(record.get("profit_cache", 10)),
                profit_edram=int(record.get("profit_edram", 1)),
            )
        )
    graph.validate()
    return graph


def graph_to_json(graph: TaskGraph, path: Union[str, Path]) -> None:
    """Write ``graph`` to ``path`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2))


def graph_from_json(path: Union[str, Path]) -> TaskGraph:
    """Load a graph from a JSON file written by :func:`graph_to_json`."""
    return graph_from_dict(json.loads(Path(path).read_text()))
