"""Periodic execution instances (paper Section 2.2).

A CNN is a periodically executed dataflow: every operation ``V_i`` and every
intermediate result ``I_{i,j}`` re-executes once per iteration (period
``p``). For ``V_i`` in the ``l``-th iteration, the tuple becomes::

    s_i^l = s_i + (l - 1) * p
    c_i^l = c_i
    d_i^l = d_i + (l - 1) * p      (l >= 1)

This module provides instance records carrying that arithmetic, plus a graph
unroller used by the discrete-event simulator and the correctness tests: it
expands ``K`` iterations of a (possibly retimed) periodic graph into one flat
DAG whose edges connect producer *instances* to consumer *instances*
``delta`` iterations later, where ``delta = R(i) - R(j)`` is the relative
retiming of the edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.graph.taskgraph import GraphValidationError, TaskGraph


@dataclass(frozen=True)
class OperationInstance:
    """Operation ``V_i`` in iteration ``l`` (1-based), written ``V_i^l``."""

    op_id: int
    iteration: int

    def __post_init__(self) -> None:
        if self.iteration < 1:
            raise GraphValidationError(
                f"iterations are 1-based, got {self.iteration}"
            )

    def start_time(self, base_start: int, period: int) -> int:
        """``s_i^l = s_i + (l - 1) p``."""
        return base_start + (self.iteration - 1) * period

    def deadline(self, base_deadline: int, period: int) -> int:
        """``d_i^l = d_i + (l - 1) p``."""
        return base_deadline + (self.iteration - 1) * period

    def __str__(self) -> str:
        return f"V{self.op_id}^{self.iteration}"


@dataclass(frozen=True)
class IntermediateInstance:
    """Intermediate result ``I_{i,j}`` in iteration ``l``."""

    producer: int
    consumer: int
    iteration: int

    def __post_init__(self) -> None:
        if self.iteration < 1:
            raise GraphValidationError(
                f"iterations are 1-based, got {self.iteration}"
            )

    def __str__(self) -> str:
        return f"I({self.producer},{self.consumer})^{self.iteration}"


#: Flat dependency: producer instance -> consumer instance for one unrolled
#: intermediate result.
UnrolledEdge = Tuple[OperationInstance, OperationInstance]


def unroll(
    graph: TaskGraph,
    iterations: int,
    relative_retiming: Optional[Mapping[Tuple[int, int], int]] = None,
) -> Tuple[List[OperationInstance], List[UnrolledEdge]]:
    """Expand ``iterations`` periods of ``graph`` into a flat instance DAG.

    Args:
        graph: the periodic task graph.
        iterations: number of iterations ``K >= 1`` to unroll.
        relative_retiming: per-edge relative retiming
            ``delta(i, j) = R(i) - R(j) >= 0``. ``None`` (or a missing key)
            means ``delta = 0``: the intra-iteration dependency of the
            original, un-retimed graph.

    Returns:
        ``(instances, edges)`` where an edge connects the producer instance
        in iteration ``l`` to the consumer instance in iteration
        ``l + delta``; dependencies whose consumer iteration exceeds ``K``
        fall off the unrolled window (they constrain only later iterations).
        Producer iterations below 1 correspond to prologue-supplied data and
        are likewise omitted -- the prologue schedule materializes them.

    The result is the ground-truth dependency set used to check that retimed
    schedules preserve the original graph semantics.
    """
    if iterations < 1:
        raise GraphValidationError(f"iterations must be >= 1, got {iterations}")
    deltas = dict(relative_retiming or {})
    for key, value in deltas.items():
        if key not in {e.key for e in graph.edges()}:
            raise GraphValidationError(f"retiming given for unknown edge {key}")
        if value < 0:
            raise GraphValidationError(
                f"relative retiming of edge {key} must be >= 0, got {value}"
            )

    instances = [
        OperationInstance(op.op_id, iteration)
        for iteration in range(1, iterations + 1)
        for op in graph.operations()
    ]
    edges: List[UnrolledEdge] = []
    for edge in graph.edges():
        delta = deltas.get(edge.key, 0)
        for consumer_iter in range(1, iterations + 1):
            producer_iter = consumer_iter - delta
            if producer_iter < 1:
                continue  # produced in the prologue
            edges.append(
                (
                    OperationInstance(edge.producer, producer_iter),
                    OperationInstance(edge.consumer, consumer_iter),
                )
            )
    return instances, edges


def instance_dependencies(
    graph: TaskGraph,
    iterations: int,
    relative_retiming: Optional[Mapping[Tuple[int, int], int]] = None,
) -> Dict[OperationInstance, List[OperationInstance]]:
    """Predecessor map over unrolled instances (consumer -> producers)."""
    _, edges = unroll(graph, iterations, relative_retiming)
    deps: Dict[OperationInstance, List[OperationInstance]] = {}
    for producer, consumer in edges:
        deps.setdefault(consumer, []).append(producer)
    return deps
