"""Task-graph transformations.

Utilities used by experiments and available to library users: execution
-time scaling (to study time-quantization sensitivity), uniform-size
rewrites (isolating structure effects from size effects), transitive-edge
pruning (CNN partitions can emit redundant dependencies) and linear-chain
coarsening (fusing pipeline stages into a single operation).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.graph.taskgraph import (
    GraphValidationError,
    IntermediateResult,
    TaskGraph,
)


def scale_execution_times(
    graph: TaskGraph, factor: float, name: Optional[str] = None
) -> TaskGraph:
    """Multiply every ``c_i`` by ``factor`` (rounded, floor 1).

    ``period_hint`` is a statement about the *execution times* of the
    graph it is attached to, so it scales with them — same rounding,
    same floor. Copying it verbatim (the old behaviour) left a hint that
    was stale for the scaled graph: infeasibly small after scaling up,
    needlessly loose after scaling down.
    """
    if factor <= 0:
        raise GraphValidationError("factor must be positive")
    hint = graph.period_hint
    out = TaskGraph(
        name=name or f"{graph.name}-x{factor:g}",
        period_hint=None if hint is None else max(1, round(hint * factor)),
    )
    for op in graph.operations():
        out.add_operation(
            replace(op, execution_time=max(1, round(op.execution_time * factor)))
        )
    for edge in graph.edges():
        out.add_edge(edge)
    return out


def with_uniform_sizes(
    graph: TaskGraph, size_bytes: int, name: Optional[str] = None
) -> TaskGraph:
    """Rewrite every intermediate result to the same footprint.

    Execution times are untouched, so ``period_hint`` — a statement
    about those times — survives the rewrite unchanged.
    """
    if size_bytes < 1:
        raise GraphValidationError("size_bytes must be positive")
    out = TaskGraph(name=name or f"{graph.name}-uniform",
                    period_hint=graph.period_hint)
    for op in graph.operations():
        out.add_operation(op)
    for edge in graph.edges():
        out.add_edge(replace(edge, size_bytes=size_bytes))
    return out


def prune_transitive_edges(
    graph: TaskGraph, name: Optional[str] = None
) -> TaskGraph:
    """Drop edges implied by longer paths (transitive reduction).

    An edge ``(i, j)`` is redundant as a *dependency* when another path
    from ``i`` to ``j`` exists; note the data transfer itself may still be
    real, so this is an analysis transform, not a semantic no-op -- use it
    to measure how much of a graph's retiming pressure comes from shortcut
    edges.
    """
    order = graph.topological_order()
    position = {op_id: idx for idx, op_id in enumerate(order)}
    # reachable[i] = set of vertices reachable from i via >= 2 edges
    reachable: Dict[int, Set[int]] = {op_id: set() for op_id in order}
    keep: List[IntermediateResult] = []
    for op_id in reversed(order):
        succs = graph.successors(op_id)
        via_two = set()
        for succ in succs:
            via_two |= reachable[succ]
            via_two.add(succ)
        # direct successors reachable through another successor's subtree
        shadowed = set()
        for succ in succs:
            for other in succs:
                if other != succ and succ in reachable[other] | set(
                    graph.successors(other)
                ):
                    shadowed.add(succ)
        for edge in graph.out_edges(op_id):
            if edge.consumer not in shadowed:
                keep.append(edge)
        reachable[op_id] = via_two
    out = TaskGraph(name=name or f"{graph.name}-reduced",
                    period_hint=graph.period_hint)
    for op in graph.operations():
        out.add_operation(op)
    for edge in sorted(keep, key=lambda e: e.key):
        out.add_edge(edge)
    out.validate()
    return out


def fuse_stages(
    graph: TaskGraph,
    runs: Sequence[Sequence[int]],
    name: Optional[str] = None,
) -> TaskGraph:
    """Contract explicit runs of stages into single fused vertices.

    The PIMfused observation: lowering a run of adjacent stages into one
    dataflow stage makes the run's *internal* intermediate results
    cache-resident by construction (they never hit the allocator), while
    the run's *boundary* IRs keep their eDRAM-vs-cache choice — a
    genuinely different ΔR profile. Where :func:`coarsen_chains` fuses
    every maximal linear chain it can find, this transform fuses exactly
    the ``runs`` the caller names, which is what a fusion *policy* needs.

    Each run must be a path ``m_0 -> m_1 -> ... -> m_k`` (consecutive
    edges present) whose non-last members have **no consumer outside the
    run** — an escaping internal IR would still need placement, so such a
    run is rejected rather than silently mis-fused. Runs must be pairwise
    disjoint. External edges into/out of a run are retargeted to the
    fused vertex; parallel boundary edges that collapse onto the same
    fused pair merge by *summing* sizes and profits (total boundary
    traffic and profit mass are conserved).

    Conservation invariants (property-tested): the fused vertex carries
    the run's summed ``execution_time``, summed ``work`` and summed
    ``fused_count``, so graph-total compute is preserved exactly.
    """
    member_of: Dict[int, Tuple[int, int]] = {}  # op_id -> (run_idx, pos)
    for run_idx, run in enumerate(runs):
        members = [int(m) for m in run]
        if len(members) < 2:
            raise GraphValidationError(
                f"fusion run {run_idx} needs >= 2 members, got {members}"
            )
        if len(set(members)) != len(members):
            raise GraphValidationError(
                f"fusion run {run_idx} repeats members: {members}"
            )
        for pos, member in enumerate(members):
            if member not in graph:
                raise GraphValidationError(
                    f"fusion run {run_idx} names unknown op {member}"
                )
            if member in member_of:
                raise GraphValidationError(
                    f"op {member} appears in more than one fusion run"
                )
            member_of[member] = (run_idx, pos)
        for earlier, later in zip(members, members[1:]):
            if not graph.has_edge(earlier, later):
                raise GraphValidationError(
                    f"fusion run {run_idx} is not a path: no edge "
                    f"({earlier}, {later})"
                )
        run_set = set(members)
        for member in members[:-1]:
            escapes = [s for s in graph.successors(member) if s not in run_set]
            if escapes:
                raise GraphValidationError(
                    f"op {member} in fusion run {run_idx} has consumers "
                    f"{sorted(escapes)} outside the run; its intermediate "
                    "result would escape the fused stage"
                )

    reps: Dict[int, int] = {}  # op_id -> representative op_id
    for run in runs:
        members = [int(m) for m in run]
        for member in members:
            reps[member] = members[0]

    # A fused vertex carries the run's *summed* execution time, so a
    # period that was feasible for the original granularity can be
    # infeasible after fusion (p >= max c_i no longer holds). There is no
    # principled rescale, so a fusing rewrite drops the hint and lets the
    # schedulers recompute the period; a no-op call keeps it.
    out = TaskGraph(
        name=name or f"{graph.name}-fused",
        period_hint=graph.period_hint if not runs else None,
    )
    for op in graph.operations():
        if op.op_id not in reps:
            out.add_operation(op)
            continue
        if reps[op.op_id] != op.op_id:
            continue  # non-head member, folded into its head below
        run_idx, _ = member_of[op.op_id]
        members = [int(m) for m in runs[run_idx]]
        member_ops = [graph.operation(m) for m in members]
        out.add_operation(
            replace(
                op,
                name="+".join(m.name for m in member_ops),
                execution_time=sum(m.execution_time for m in member_ops),
                work=sum(m.work for m in member_ops),
                fused_count=sum(m.fused_count for m in member_ops),
            )
        )

    merged: Dict[Tuple[int, int], IntermediateResult] = {}
    for edge in graph.edges():
        producer = reps.get(edge.producer, edge.producer)
        consumer = reps.get(edge.consumer, edge.consumer)
        if producer == consumer:
            continue  # internal IR: cache-resident by construction
        key = (producer, consumer)
        existing = merged.get(key)
        if existing is None:
            merged[key] = replace(edge, producer=producer, consumer=consumer)
        else:
            merged[key] = replace(
                existing,
                size_bytes=existing.size_bytes + edge.size_bytes,
                profit_cache=existing.profit_cache + edge.profit_cache,
                profit_edram=existing.profit_edram + edge.profit_edram,
            )
    for key in sorted(merged):
        out.add_edge(merged[key])
    out.validate()
    return out


def coarsen_chains(graph: TaskGraph, name: Optional[str] = None) -> TaskGraph:
    """Fuse maximal linear chains into single operations.

    A vertex with exactly one predecessor and one successor, whose
    predecessor has exactly one successor, merges into it: execution times
    add, the incoming edge survives with the chain-head's identity. This
    models operator fusion and reduces scheduling granularity.
    """
    order = graph.topological_order()
    # head[v]: representative (chain head) for v
    head: Dict[int, int] = {}
    extra_time: Dict[int, int] = {op_id: 0 for op_id in order}
    for op_id in order:
        preds = graph.predecessors(op_id)
        if (
            len(preds) == 1
            and graph.out_degree(preds[0]) == 1
            and graph.in_degree(op_id) == 1
        ):
            rep = head.get(preds[0], preds[0])
            head[op_id] = rep
            extra_time[rep] += graph.operation(op_id).execution_time
        else:
            head[op_id] = op_id

    # Same stale-metadata hazard as fuse_stages: chain fusion sums
    # execution times, so the hint only survives a no-op coarsening.
    coarsened = any(head[op_id] != op_id for op_id in order)
    out = TaskGraph(name=name or f"{graph.name}-coarse",
                    period_hint=None if coarsened else graph.period_hint)
    for op in graph.operations():
        if head[op.op_id] == op.op_id:
            out.add_operation(
                replace(
                    op,
                    execution_time=op.execution_time + extra_time[op.op_id],
                )
            )
    for edge in graph.edges():
        producer = head[edge.producer]
        consumer = head[edge.consumer]
        if producer == consumer:
            continue  # edge internal to a fused chain
        if not out.has_edge(producer, consumer):
            out.add_edge(
                replace(edge, producer=producer, consumer=consumer)
            )
    out.validate()
    return out
