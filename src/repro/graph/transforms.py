"""Task-graph transformations.

Utilities used by experiments and available to library users: execution
-time scaling (to study time-quantization sensitivity), uniform-size
rewrites (isolating structure effects from size effects), transitive-edge
pruning (CNN partitions can emit redundant dependencies) and linear-chain
coarsening (fusing pipeline stages into a single operation).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Set

from repro.graph.taskgraph import (
    GraphValidationError,
    IntermediateResult,
    TaskGraph,
)


def scale_execution_times(
    graph: TaskGraph, factor: float, name: Optional[str] = None
) -> TaskGraph:
    """Multiply every ``c_i`` by ``factor`` (rounded, floor 1)."""
    if factor <= 0:
        raise GraphValidationError("factor must be positive")
    out = TaskGraph(name=name or f"{graph.name}-x{factor:g}",
                    period_hint=graph.period_hint)
    for op in graph.operations():
        out.add_operation(
            replace(op, execution_time=max(1, round(op.execution_time * factor)))
        )
    for edge in graph.edges():
        out.add_edge(edge)
    return out


def with_uniform_sizes(
    graph: TaskGraph, size_bytes: int, name: Optional[str] = None
) -> TaskGraph:
    """Rewrite every intermediate result to the same footprint."""
    if size_bytes < 1:
        raise GraphValidationError("size_bytes must be positive")
    out = TaskGraph(name=name or f"{graph.name}-uniform",
                    period_hint=graph.period_hint)
    for op in graph.operations():
        out.add_operation(op)
    for edge in graph.edges():
        out.add_edge(replace(edge, size_bytes=size_bytes))
    return out


def prune_transitive_edges(
    graph: TaskGraph, name: Optional[str] = None
) -> TaskGraph:
    """Drop edges implied by longer paths (transitive reduction).

    An edge ``(i, j)`` is redundant as a *dependency* when another path
    from ``i`` to ``j`` exists; note the data transfer itself may still be
    real, so this is an analysis transform, not a semantic no-op -- use it
    to measure how much of a graph's retiming pressure comes from shortcut
    edges.
    """
    order = graph.topological_order()
    position = {op_id: idx for idx, op_id in enumerate(order)}
    # reachable[i] = set of vertices reachable from i via >= 2 edges
    reachable: Dict[int, Set[int]] = {op_id: set() for op_id in order}
    keep: List[IntermediateResult] = []
    for op_id in reversed(order):
        succs = graph.successors(op_id)
        via_two = set()
        for succ in succs:
            via_two |= reachable[succ]
            via_two.add(succ)
        # direct successors reachable through another successor's subtree
        shadowed = set()
        for succ in succs:
            for other in succs:
                if other != succ and succ in reachable[other] | set(
                    graph.successors(other)
                ):
                    shadowed.add(succ)
        for edge in graph.out_edges(op_id):
            if edge.consumer not in shadowed:
                keep.append(edge)
        reachable[op_id] = via_two
    out = TaskGraph(name=name or f"{graph.name}-reduced",
                    period_hint=graph.period_hint)
    for op in graph.operations():
        out.add_operation(op)
    for edge in sorted(keep, key=lambda e: e.key):
        out.add_edge(edge)
    out.validate()
    return out


def coarsen_chains(graph: TaskGraph, name: Optional[str] = None) -> TaskGraph:
    """Fuse maximal linear chains into single operations.

    A vertex with exactly one predecessor and one successor, whose
    predecessor has exactly one successor, merges into it: execution times
    add, the incoming edge survives with the chain-head's identity. This
    models operator fusion and reduces scheduling granularity.
    """
    order = graph.topological_order()
    # head[v]: representative (chain head) for v
    head: Dict[int, int] = {}
    extra_time: Dict[int, int] = {op_id: 0 for op_id in order}
    for op_id in order:
        preds = graph.predecessors(op_id)
        if (
            len(preds) == 1
            and graph.out_degree(preds[0]) == 1
            and graph.in_degree(op_id) == 1
        ):
            rep = head.get(preds[0], preds[0])
            head[op_id] = rep
            extra_time[rep] += graph.operation(op_id).execution_time
        else:
            head[op_id] = op_id

    out = TaskGraph(name=name or f"{graph.name}-coarse",
                    period_hint=graph.period_hint)
    for op in graph.operations():
        if head[op.op_id] == op.op_id:
            out.add_operation(
                replace(
                    op,
                    execution_time=op.execution_time + extra_time[op.op_id],
                )
            )
    for edge in graph.edges():
        producer = head[edge.producer]
        consumer = head[edge.consumer]
        if producer == consumer:
            continue  # edge internal to a fused chain
        if not out.has_edge(producer, consumer):
            out.add_edge(
                replace(edge, producer=producer, consumer=consumer)
            )
    out.validate()
    return out
