"""Randomly-wired task-graph generators (ER / WS / BA families).

The paper's twelve benchmarks are regular layered CNN pipelines, but
production model zoos are not: randomly-wired architectures (Xie et al.,
"Exploring Randomly Wired Neural Networks") build their dataflow from
classic random-graph families and stress exactly the parts of the stack
a layered generator never exercises — high fan-in joins, long skip
edges, hub vertices. This module reproduces that lowering with *pure
stdlib* generators (``random.Random`` only, no networkx dependency):

1. draw an undirected random graph on ``n`` core vertices from one of
   the three classic families —

   * **ER** (Erdős–Rényi): every pair ``{i, j}`` is an edge with
     independent probability ``p``;
   * **WS** (Watts–Strogatz): a ring lattice where each vertex connects
     to its ``k`` nearest neighbours, with each edge rewired to a random
     partner with probability ``p`` (small-world shortcuts);
   * **BA** (Barabási–Albert): vertices arrive one at a time and attach
     ``m`` edges preferentially to high-degree vertices (scale-free
     hubs, i.e. extreme fan-in);

2. orient every edge from the lower to the higher vertex id — the
   orientation of the randwired paper, which makes any undirected graph
   a DAG by construction;
3. add a *stem* vertex feeding every in-degree-0 core vertex and a
   *head* vertex collecting every out-degree-0 core vertex, so the
   graph is weakly connected with a single source and a single sink
   (the head is the canonical high-fan-in stress vertex);
4. draw execution times, intermediate-result sizes and conv/pool kinds
   from the seeded stream, exactly like the layered generator.

Everything is a deterministic function of ``(spec, seed)``: iteration
is over sorted structures only, so the generated graph — and its
fingerprint — is byte-identical across processes regardless of
``PYTHONHASHSEED`` (property-tested).

Any :class:`~repro.verify.validator.ScheduleValidator` violation on a
graph produced here is a bug by definition: the generators only emit
legal workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.generators import GeneratorParams
from repro.graph.taskgraph import (
    GraphValidationError,
    OperationKind,
    TaskGraph,
)

__all__ = [
    "RANDWIRED_KINDS",
    "RANDWIRED_SPECS",
    "RandwiredSpec",
    "all_randwired_benchmarks",
    "barabasi_albert_dag",
    "erdos_renyi_dag",
    "randwired_benchmark",
    "randwired_graph",
    "watts_strogatz_dag",
]

#: The three supported random-graph families.
RANDWIRED_KINDS = ("er", "ws", "ba")


@dataclass(frozen=True)
class RandwiredSpec:
    """Full recipe for one randomly-wired workload.

    Attributes:
        kind: random-graph family (``er``, ``ws`` or ``ba``).
        num_vertices: core vertex count (stem and head are added on top).
        p: ER edge probability / WS rewiring probability (unused by BA).
        k: WS ring-lattice degree — each vertex connects to its ``k``
            nearest neighbours; must be even and ``< num_vertices``.
        m: BA attachment count — edges each arriving vertex brings.
        seed: RNG seed; the graph is a pure function of the spec.
    """

    kind: str
    num_vertices: int
    p: float = 0.25
    k: int = 4
    m: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in RANDWIRED_KINDS:
            raise GraphValidationError(
                f"unknown randwired kind {self.kind!r}; "
                f"supported: {', '.join(RANDWIRED_KINDS)}"
            )
        if self.num_vertices < 2:
            raise GraphValidationError("need at least 2 core vertices")
        if not 0.0 <= self.p <= 1.0:
            raise GraphValidationError("p must be in [0, 1]")
        if self.kind == "ws":
            if self.k < 2 or self.k % 2 != 0:
                raise GraphValidationError("WS k must be even and >= 2")
            if self.k >= self.num_vertices:
                raise GraphValidationError(
                    f"WS k={self.k} must be < num_vertices={self.num_vertices}"
                )
        if self.kind == "ba" and not 1 <= self.m < self.num_vertices:
            raise GraphValidationError(
                f"BA m={self.m} must be in [1, num_vertices)"
            )


# ----------------------------------------------------------------------
# undirected edge sets (deterministic: sorted pairs only)
# ----------------------------------------------------------------------
def _er_edges(n: int, p: float, rng: random.Random) -> List[Tuple[int, int]]:
    """Erdős–Rényi G(n, p): each forward pair drawn independently."""
    return [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < p
    ]


def _ws_edges(
    n: int, k: int, p: float, rng: random.Random
) -> List[Tuple[int, int]]:
    """Watts–Strogatz ring lattice with probabilistic rewiring.

    The lattice edge ``(i, i+j)`` (mod n) is kept with probability
    ``1 - p`` or rewired to ``(i, random partner)``; duplicates and
    self-loops are rejected by redrawing, like networkx's generator.
    """
    edges: Set[Tuple[int, int]] = set()
    for j in range(1, k // 2 + 1):
        for i in range(n):
            edges.add(tuple(sorted((i, (i + j) % n))))
    rewired: Set[Tuple[int, int]] = set()
    for edge in sorted(edges):
        if rng.random() < p:
            i = edge[0]
            for _attempt in range(4 * n):
                partner = rng.randrange(n)
                candidate = tuple(sorted((i, partner)))
                if (
                    partner != i
                    and candidate not in edges
                    and candidate not in rewired
                ):
                    rewired.add(candidate)
                    break
            else:  # saturated neighbourhood: keep the lattice edge
                rewired.add(edge)
        else:
            rewired.add(edge)
    return sorted(rewired)


def _ba_edges(n: int, m: int, rng: random.Random) -> List[Tuple[int, int]]:
    """Barabási–Albert preferential attachment.

    Vertices ``m..n-1`` arrive in order and attach ``m`` edges to
    distinct earlier vertices, sampled from the degree-weighted repeated
    -nodes list (the standard O(E) construction).
    """
    targets = list(range(m))
    repeated: List[int] = []
    edges: List[Tuple[int, int]] = []
    for source in range(m, n):
        chosen: Set[int] = set()
        pool = repeated if repeated else targets
        while len(chosen) < m:
            chosen.add(pool[rng.randrange(len(pool))])
        for target in sorted(chosen):
            edges.append((target, source))
            repeated.extend((target, source))
    return edges


# ----------------------------------------------------------------------
# lowering: undirected edges -> legal weighted task graph
# ----------------------------------------------------------------------
def _lower(
    spec: RandwiredSpec,
    edges: List[Tuple[int, int]],
    rng: random.Random,
    params: GeneratorParams,
    name: str,
) -> TaskGraph:
    """Orient low->high, add stem/head, draw weights from the stream."""
    n = spec.num_vertices
    graph = TaskGraph(name=name)
    pool_count = int(params.pool_fraction * n)
    pool_ids = (
        set(rng.sample(range(1, n), pool_count)) if pool_count else set()
    )
    stem, head = n, n + 1
    for op_id in range(n):
        graph.add_op(
            op_id,
            execution_time=rng.randint(params.min_exec, params.max_exec),
            kind=(
                OperationKind.POOL
                if op_id in pool_ids
                else OperationKind.CONV
            ),
        )
    graph.add_op(
        stem,
        execution_time=rng.randint(params.min_exec, params.max_exec),
        name="stem",
    )
    graph.add_op(
        head,
        execution_time=rng.randint(params.min_exec, params.max_exec),
        name="head",
    )

    oriented = sorted({(min(i, j), max(i, j)) for i, j in edges})
    in_deg = {op_id: 0 for op_id in range(n)}
    out_deg = {op_id: 0 for op_id in range(n)}
    for producer, consumer in oriented:
        in_deg[consumer] += 1
        out_deg[producer] += 1
    # Stem feeds every core source, head collects every core sink, in id
    # order so the edge-insertion sequence is deterministic.
    stitched = (
        [(stem, v) for v in range(n) if in_deg[v] == 0]
        + oriented
        + [(v, head) for v in range(n) if out_deg[v] == 0]
    )
    for producer, consumer in stitched:
        graph.connect(
            producer,
            consumer,
            size_bytes=rng.randint(params.min_size, params.max_size),
        )
    graph.validate()
    return graph


def randwired_graph(
    spec: RandwiredSpec,
    params: Optional[GeneratorParams] = None,
    name: Optional[str] = None,
) -> TaskGraph:
    """Generate the task graph for one :class:`RandwiredSpec`."""
    rng = random.Random(spec.seed)
    p = params or GeneratorParams()
    if spec.kind == "er":
        edges = _er_edges(spec.num_vertices, spec.p, rng)
    elif spec.kind == "ws":
        edges = _ws_edges(spec.num_vertices, spec.k, spec.p, rng)
    else:
        edges = _ba_edges(spec.num_vertices, spec.m, rng)
    label = name or (
        f"randwired-{spec.kind}-{spec.num_vertices}s{spec.seed}"
    )
    return _lower(spec, edges, rng, p, label)


def erdos_renyi_dag(
    num_vertices: int,
    p: float = 0.25,
    seed: int = 0,
    params: Optional[GeneratorParams] = None,
    name: Optional[str] = None,
) -> TaskGraph:
    """ER random DAG (see module docstring for the lowering)."""
    return randwired_graph(
        RandwiredSpec(kind="er", num_vertices=num_vertices, p=p, seed=seed),
        params=params,
        name=name,
    )


def watts_strogatz_dag(
    num_vertices: int,
    k: int = 4,
    p: float = 0.25,
    seed: int = 0,
    params: Optional[GeneratorParams] = None,
    name: Optional[str] = None,
) -> TaskGraph:
    """WS small-world DAG (see module docstring for the lowering)."""
    return randwired_graph(
        RandwiredSpec(
            kind="ws", num_vertices=num_vertices, k=k, p=p, seed=seed
        ),
        params=params,
        name=name,
    )


def barabasi_albert_dag(
    num_vertices: int,
    m: int = 3,
    seed: int = 0,
    params: Optional[GeneratorParams] = None,
    name: Optional[str] = None,
) -> TaskGraph:
    """BA scale-free DAG (see module docstring for the lowering)."""
    return randwired_graph(
        RandwiredSpec(kind="ba", num_vertices=num_vertices, m=m, seed=seed),
        params=params,
        name=name,
    )


# ----------------------------------------------------------------------
# named benchmark registry (mirrors the Table 1 benchmark registry)
# ----------------------------------------------------------------------
#: Named randwired benchmarks every CLI can address, sized so the full
#: verification battery stays interactive. Seeds are fixed per name so
#: the graphs (and their fingerprints) never change between runs.
RANDWIRED_SPECS: Dict[str, RandwiredSpec] = {
    "randwired-er": RandwiredSpec(
        kind="er", num_vertices=24, p=0.22, seed=0x5EED + 0
    ),
    "randwired-ws": RandwiredSpec(
        kind="ws", num_vertices=32, k=4, p=0.3, seed=0x5EED + 1
    ),
    "randwired-ba": RandwiredSpec(
        kind="ba", num_vertices=32, m=3, seed=0x5EED + 2
    ),
    "randwired-er-64": RandwiredSpec(
        kind="er", num_vertices=64, p=0.1, seed=0x5EED + 3
    ),
    "randwired-ba-64": RandwiredSpec(
        kind="ba", num_vertices=64, m=4, seed=0x5EED + 4
    ),
}


def randwired_benchmark(
    name: str, params: Optional[GeneratorParams] = None
) -> TaskGraph:
    """Build one named randwired benchmark (deterministic per name)."""
    try:
        spec = RANDWIRED_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(RANDWIRED_SPECS))
        raise GraphValidationError(
            f"unknown randwired benchmark {name!r}; known: {known}"
        ) from None
    return randwired_graph(spec, params=params, name=name)


def all_randwired_benchmarks(
    params: Optional[GeneratorParams] = None,
) -> List[TaskGraph]:
    """Every named randwired benchmark, in registry order."""
    return [randwired_benchmark(name, params) for name in RANDWIRED_SPECS]


def reseeded(spec: RandwiredSpec, seed: int) -> RandwiredSpec:
    """The same recipe under a different seed (property sweeps)."""
    return replace(spec, seed=seed)
