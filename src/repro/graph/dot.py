"""Graphviz DOT export for task graphs and allocation results.

Visual debugging aid: render the application DAG, optionally annotated
with a Para-CONV run's retiming values and intermediate-result placements
(cached edges solid, eDRAM edges dashed). Output is plain DOT text; render
with any Graphviz installation (``dot -Tpng graph.dot -o graph.png``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Optional, Tuple, Union

from repro.graph.taskgraph import OperationKind, TaskGraph

_KIND_SHAPES = {
    OperationKind.CONV: "box",
    OperationKind.POOL: "ellipse",
    OperationKind.FC: "hexagon",
    OperationKind.INPUT: "plaintext",
    OperationKind.OUTPUT: "plaintext",
    OperationKind.GENERIC: "box",
}


def _escape(text: str) -> str:
    return text.replace('"', r"\"")


def graph_to_dot(
    graph: TaskGraph,
    retiming: Optional[Mapping[int, int]] = None,
    placements: Optional[Mapping[Tuple[int, int], object]] = None,
) -> str:
    """Render ``graph`` as DOT text.

    Args:
        graph: the task graph.
        retiming: optional ``R(i)`` per op, shown in the node label.
        placements: optional edge placements (values with a ``.value`` of
            ``"cache"``/``"edram"``, i.e. :class:`repro.pim.memory.Placement`);
            cached edges render solid/bold, eDRAM edges dashed.
    """
    lines = [f'digraph "{_escape(graph.name)}" {{', "  rankdir=TB;"]
    for op in graph.operations():
        label = f"{op.name}\\nc={op.execution_time}"
        if retiming is not None and op.op_id in retiming:
            label += f"\\nR={retiming[op.op_id]}"
        shape = _KIND_SHAPES.get(op.kind, "box")
        lines.append(
            f'  n{op.op_id} [label="{_escape(label)}", shape={shape}];'
        )
    for edge in graph.edges():
        attributes = [f'label="{edge.size_bytes}B"']
        if placements is not None and edge.key in placements:
            placement = placements[edge.key]
            value = getattr(placement, "value", str(placement))
            if value == "cache":
                attributes.append("style=bold")
                attributes.append('color="forestgreen"')
            else:
                attributes.append("style=dashed")
                attributes.append('color="firebrick"')
        lines.append(
            f"  n{edge.producer} -> n{edge.consumer} "
            f"[{', '.join(attributes)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def write_dot(
    graph: TaskGraph,
    path: Union[str, Path],
    retiming: Optional[Mapping[int, int]] = None,
    placements: Optional[Mapping[Tuple[int, int], object]] = None,
) -> None:
    """Write :func:`graph_to_dot` output to ``path``."""
    Path(path).write_text(graph_to_dot(graph, retiming, placements))


def result_to_dot(result) -> str:
    """Render a :class:`repro.core.paraconv.ParaConvResult` with annotations."""
    return graph_to_dot(
        result.graph,
        retiming=result.schedule.retiming,
        placements=result.schedule.placements,
    )
