"""Core task-graph data structures (paper Section 2.2).

The application model is a weighted DAG ``G = (V, E, P, R)``:

* ``V = {T_1 .. T_n}`` -- each vertex is a convolution or pooling operation,
* ``E ⊆ V × V`` -- each directed edge ``(V_i, V_j)`` represents the
  intermediate processing result ``I_{i,j}`` produced by ``V_i`` and consumed
  by ``V_j``,
* ``P`` maps every intermediate result to two non-negative placement profits:
  ``P_alpha`` for on-chip cache in the PE array and ``P_beta`` for eDRAM in
  the 3D stacked memory, with ``P_alpha >> P_beta``,
* ``R`` (the retiming function) lives in :mod:`repro.core.retiming`; the
  graph itself is retiming-agnostic.

All times are integer *time units*; all sizes are integer *bytes*.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Version tag baked into every task-graph fingerprint; bump when the
#: canonical form changes so cached plans keyed on old fingerprints are
#: invalidated rather than silently reused.
GRAPH_FINGERPRINT_VERSION = 1


class GraphValidationError(ValueError):
    """Raised when a :class:`TaskGraph` violates a structural invariant."""


#: How many cycle members a cycle error names before truncating — enough
#: to localize the bug in a user-supplied graph, bounded so a pathological
#: whole-graph cycle cannot produce a megabyte error message.
CYCLE_REPORT_LIMIT = 12


def _describe_cycle(cycle: List[int]) -> str:
    """``3 -> 7 -> 9 -> 3`` rendering, truncated past the report limit."""
    shown = cycle[:CYCLE_REPORT_LIMIT]
    arrow = " -> ".join(str(v) for v in shown)
    if len(cycle) > CYCLE_REPORT_LIMIT:
        return f"{arrow} -> ... ({len(cycle) - CYCLE_REPORT_LIMIT} more) -> {cycle[0]}"
    return f"{arrow} -> {cycle[0]}"


class OperationKind(enum.Enum):
    """Functional class of a task-graph vertex.

    The partitioner (:mod:`repro.cnn.partition`) splits CNN applications by
    functionality -- convolution or pooling -- per paper Section 4.1; the
    remaining kinds support graph sources/sinks and synthetic workloads.
    """

    CONV = "conv"
    POOL = "pool"
    FC = "fc"
    INPUT = "input"
    OUTPUT = "output"
    GENERIC = "generic"

    @property
    def is_compute(self) -> bool:
        """Whether vertices of this kind occupy a processing engine."""
        return self not in (OperationKind.INPUT, OperationKind.OUTPUT)


@dataclass(frozen=True)
class Operation:
    """A convolution/pooling operation ``V_i`` (one task-graph vertex).

    The paper associates each operation with the tuple ``(s_i, c_i, d_i)``:
    start time, execution time and deadline. Only the execution time ``c_i``
    is intrinsic to the operation; start times and deadlines are produced by
    schedulers and stored in schedule objects, not here.

    Attributes:
        op_id: unique non-negative integer identifier within a graph.
        name: human-readable label (layer name for CNN-derived graphs).
        kind: functional class (conv, pool, ...).
        execution_time: ``c_i`` in time units, strictly positive.
        work: abstract operation count (MACs for convolutions); informational.
        fused_count: number of original operations this vertex stands for.
            ``1`` for ordinary vertices; fused-dataflow lowering
            (:func:`repro.graph.transforms.fuse_stages`, PIMfused-style)
            contracts a run of stages into one vertex and records the run
            length here so accounting and reports can attribute work.
    """

    op_id: int
    name: str = ""
    kind: OperationKind = OperationKind.CONV
    execution_time: int = 1
    work: int = 0
    fused_count: int = 1

    def __post_init__(self) -> None:
        if self.op_id < 0:
            raise GraphValidationError(f"op_id must be >= 0, got {self.op_id}")
        if self.execution_time <= 0:
            raise GraphValidationError(
                f"execution_time of {self.name or self.op_id} must be positive, "
                f"got {self.execution_time}"
            )
        if self.work < 0:
            raise GraphValidationError("work must be non-negative")
        if self.fused_count < 1:
            raise GraphValidationError("fused_count must be >= 1")
        if not self.name:
            object.__setattr__(self, "name", f"T{self.op_id}")

    def with_execution_time(self, execution_time: int) -> "Operation":
        """Return a copy of this operation with a different ``c_i``."""
        return replace(self, execution_time=execution_time)


@dataclass(frozen=True)
class IntermediateResult:
    """An intermediate processing result ``I_{i,j}`` (one task-graph edge).

    ``I_{i,j}`` is the data transferred from operation ``V_i`` to operation
    ``V_j``. Its placement (on-chip cache vs. eDRAM) determines both its
    transfer latency and the profit weights ``P_alpha``/``P_beta``.

    Attributes:
        producer: ``op_id`` of ``V_i``.
        consumer: ``op_id`` of ``V_j``.
        size_bytes: footprint of the intermediate data, strictly positive.
        profit_cache: ``P_alpha(I_{i,j})`` -- profit when placed in the
            on-chip PE cache.
        profit_edram: ``P_beta(I_{i,j})`` -- profit when placed in stacked
            eDRAM; the paper requires ``P_alpha >> P_beta``.
    """

    producer: int
    consumer: int
    size_bytes: int = 1
    profit_cache: int = 10
    profit_edram: int = 1

    def __post_init__(self) -> None:
        if self.producer == self.consumer:
            raise GraphValidationError(
                f"self-loop on operation {self.producer} is not a DAG edge"
            )
        if self.size_bytes <= 0:
            raise GraphValidationError("size_bytes must be positive")
        if self.profit_cache < 0 or self.profit_edram < 0:
            raise GraphValidationError("profits must be non-negative")
        if self.profit_cache < self.profit_edram:
            raise GraphValidationError(
                "P_alpha (cache profit) must dominate P_beta (eDRAM profit): "
                f"{self.profit_cache} < {self.profit_edram}"
            )

    @property
    def key(self) -> Tuple[int, int]:
        """The ``(producer, consumer)`` edge key."""
        return (self.producer, self.consumer)


class TaskGraph:
    """A weighted DAG of operations and intermediate processing results.

    Vertices and edges are added incrementally; :meth:`validate` checks the
    structural invariants (acyclicity, endpoint existence). Iteration order
    over operations is insertion order, which generators keep deterministic.
    """

    def __init__(self, name: str = "taskgraph", period_hint: Optional[int] = None):
        self.name = name
        #: optional externally supplied iteration period ``p``; schedulers
        #: compute their own period when this is ``None``.
        self.period_hint = period_hint
        self._ops: Dict[int, Operation] = {}
        self._edges: Dict[Tuple[int, int], IntermediateResult] = {}
        self._succ: Dict[int, List[int]] = {}
        self._pred: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_operation(self, op: Operation) -> Operation:
        """Insert a vertex; raises if the ``op_id`` is already present."""
        if op.op_id in self._ops:
            raise GraphValidationError(f"duplicate op_id {op.op_id}")
        self._ops[op.op_id] = op
        self._succ[op.op_id] = []
        self._pred[op.op_id] = []
        return op

    def add_op(
        self,
        op_id: int,
        execution_time: int = 1,
        name: str = "",
        kind: OperationKind = OperationKind.CONV,
        work: int = 0,
        fused_count: int = 1,
    ) -> Operation:
        """Convenience wrapper around :meth:`add_operation`."""
        return self.add_operation(
            Operation(
                op_id=op_id,
                name=name,
                kind=kind,
                execution_time=execution_time,
                work=work,
                fused_count=fused_count,
            )
        )

    def add_edge(self, edge: IntermediateResult) -> IntermediateResult:
        """Insert the intermediate result ``I_{i,j}``.

        Both endpoints must already exist and the edge must be unique.
        Cycle detection is deferred to :meth:`validate` /
        :meth:`topological_order` so bulk construction stays ``O(V + E)``.
        """
        i, j = edge.producer, edge.consumer
        if i not in self._ops:
            raise GraphValidationError(f"producer {i} not in graph")
        if j not in self._ops:
            raise GraphValidationError(f"consumer {j} not in graph")
        if edge.key in self._edges:
            raise GraphValidationError(f"duplicate edge {edge.key}")
        self._edges[edge.key] = edge
        self._succ[i].append(j)
        self._pred[j].append(i)
        return edge

    def connect(
        self,
        producer: int,
        consumer: int,
        size_bytes: int = 1,
        profit_cache: int = 10,
        profit_edram: int = 1,
    ) -> IntermediateResult:
        """Convenience wrapper around :meth:`add_edge`."""
        return self.add_edge(
            IntermediateResult(
                producer=producer,
                consumer=consumer,
                size_bytes=size_bytes,
                profit_cache=profit_cache,
                profit_edram=profit_edram,
            )
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._ops)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def operations(self) -> List[Operation]:
        """All operations in insertion order."""
        return list(self._ops.values())

    def operation(self, op_id: int) -> Operation:
        try:
            return self._ops[op_id]
        except KeyError:
            raise GraphValidationError(f"unknown op_id {op_id}") from None

    def __contains__(self, op_id: int) -> bool:
        return op_id in self._ops

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops.values())

    def __len__(self) -> int:
        return len(self._ops)

    def edges(self) -> List[IntermediateResult]:
        """All intermediate results in insertion order."""
        return list(self._edges.values())

    def edge(self, producer: int, consumer: int) -> IntermediateResult:
        try:
            return self._edges[(producer, consumer)]
        except KeyError:
            raise GraphValidationError(
                f"no intermediate result I_({producer},{consumer})"
            ) from None

    def has_edge(self, producer: int, consumer: int) -> bool:
        return (producer, consumer) in self._edges

    def successors(self, op_id: int) -> List[int]:
        return list(self._succ[op_id])

    def predecessors(self, op_id: int) -> List[int]:
        return list(self._pred[op_id])

    def out_degree(self, op_id: int) -> int:
        return len(self._succ[op_id])

    def in_degree(self, op_id: int) -> int:
        return len(self._pred[op_id])

    def sources(self) -> List[int]:
        """Operations with no predecessors (graph inputs)."""
        return [i for i in self._ops if not self._pred[i]]

    def sinks(self) -> List[int]:
        """Operations with no successors (graph outputs)."""
        return [i for i in self._ops if not self._succ[i]]

    def out_edges(self, op_id: int) -> List[IntermediateResult]:
        return [self._edges[(op_id, j)] for j in self._succ[op_id]]

    def in_edges(self, op_id: int) -> List[IntermediateResult]:
        return [self._edges[(i, op_id)] for i in self._pred[op_id]]

    def total_work(self) -> int:
        """``Σ c_i`` -- lower-bound numerator for the load-balance bound."""
        return sum(op.execution_time for op in self._ops.values())

    def max_execution_time(self) -> int:
        """``max c_i`` -- the other term of the load-balance bound."""
        if not self._ops:
            return 0
        return max(op.execution_time for op in self._ops.values())

    def total_intermediate_bytes(self) -> int:
        """Aggregate footprint of all intermediate processing results."""
        return sum(e.size_bytes for e in self._edges.values())

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def topological_order(self) -> List[int]:
        """Kahn topological order; raises on cycles.

        Ties are broken by ``op_id`` so the order is deterministic, which
        keeps every downstream schedule reproducible.
        """
        indeg = {i: len(self._pred[i]) for i in self._ops}
        ready = sorted(i for i, d in indeg.items() if d == 0)
        order: List[int] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            inserted = False
            for succ in self._succ[node]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
                    inserted = True
            if inserted:
                ready.sort()
        if len(order) != len(self._ops):
            remaining = {i for i in self._ops if i not in set(order)}
            cycle = self._find_cycle(remaining)
            raise GraphValidationError(
                f"graph '{self.name}' contains a cycle; a CNN dataflow must be "
                f"a DAG (cycle: {_describe_cycle(cycle)})"
            )
        return order

    def _find_cycle(self, remaining: "Set[int]") -> List[int]:
        """One concrete cycle among the vertices Kahn could not order.

        Every vertex left over after Kahn's algorithm has at least one
        predecessor that is also left over, so walking predecessors
        (smallest id first, for determinism) must revisit a vertex; the
        walk between the two visits — reversed into edge direction — is
        a cycle. Used only to make the cycle error actionable.
        """
        start = min(remaining)
        path = [start]
        seen = {start: 0}
        node = start
        while True:
            node = min(p for p in self._pred[node] if p in remaining)
            if node in seen:
                cycle = list(reversed(path[seen[node]:]))
                # Rotate the smallest member to the front so the same
                # cycle always renders identically regardless of where
                # the predecessor walk happened to close it.
                pivot = cycle.index(min(cycle))
                return cycle[pivot:] + cycle[:pivot]
            seen[node] = len(path)
            path.append(node)

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
        except GraphValidationError:
            return False
        return True

    def validate(self) -> None:
        """Check all structural invariants; raises on violation."""
        if not self._ops:
            raise GraphValidationError(f"graph '{self.name}' is empty")
        self.topological_order()
        if self.period_hint is not None and self.period_hint <= 0:
            raise GraphValidationError("period_hint must be positive")

    def fingerprint(self) -> str:
        """Stable content hash of the graph structure (hex digest).

        The canonical form covers every semantically meaningful field —
        operations (id, kind, execution time, work), intermediate results
        (endpoints, size, profits) and the period hint — sorted by id/key
        so insertion order does not matter. The graph *name* is excluded:
        two structurally identical graphs produce the same fingerprint
        regardless of labelling, which is exactly the content-addressing
        the runtime plan cache needs. A version tag is folded in so a
        change to the canonical form invalidates old fingerprints.
        """
        canonical = {
            "fingerprint_version": GRAPH_FINGERPRINT_VERSION,
            "period_hint": self.period_hint,
            # fused_count is appended only when non-default so every
            # pre-fusion graph keeps its historical fingerprint (cached
            # plans and golden fixtures stay valid), while any fused
            # vertex changes identity as it must.
            "operations": [
                [op.op_id, op.kind.value, op.execution_time, op.work]
                + ([op.fused_count] if op.fused_count != 1 else [])
                for op in sorted(self._ops.values(), key=lambda o: o.op_id)
            ],
            "edges": [
                [e.producer, e.consumer, e.size_bytes, e.profit_cache, e.profit_edram]
                for e in sorted(self._edges.values(), key=lambda e: e.key)
            ],
        }
        payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def copy(self, name: Optional[str] = None) -> "TaskGraph":
        """Deep-enough copy (operations and edges are immutable)."""
        clone = TaskGraph(name=name or self.name, period_hint=self.period_hint)
        for op in self._ops.values():
            clone.add_operation(op)
        for edge in self._edges.values():
            clone.add_edge(edge)
        return clone

    def subgraph(self, op_ids: Iterable[int], name: Optional[str] = None) -> "TaskGraph":
        """Induced subgraph over ``op_ids`` (edges with both endpoints kept)."""
        keep = set(op_ids)
        missing = keep - set(self._ops)
        if missing:
            raise GraphValidationError(f"unknown op_ids in subgraph: {sorted(missing)}")
        sub = TaskGraph(name=name or f"{self.name}-sub", period_hint=self.period_hint)
        for op_id in self._ops:  # preserve insertion order
            if op_id in keep:
                sub.add_operation(self._ops[op_id])
        for edge in self._edges.values():
            if edge.producer in keep and edge.consumer in keep:
                sub.add_edge(edge)
        return sub

    def relabelled(self, name: Optional[str] = None) -> "TaskGraph":
        """Return a copy with op_ids compacted to ``0..n-1`` in insertion order."""
        mapping = {old: new for new, old in enumerate(self._ops)}
        out = TaskGraph(name=name or self.name, period_hint=self.period_hint)
        for op in self._ops.values():
            out.add_operation(replace(op, op_id=mapping[op.op_id]))
        for edge in self._edges.values():
            out.add_edge(
                replace(
                    edge,
                    producer=mapping[edge.producer],
                    consumer=mapping[edge.consumer],
                )
            )
        return out

    def __repr__(self) -> str:
        return (
            f"TaskGraph(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )


def linear_chain(
    lengths: Sequence[int], name: str = "chain", size_bytes: int = 1
) -> TaskGraph:
    """Build a simple pipeline graph ``T_0 -> T_1 -> ... -> T_{n-1}``.

    Handy for tests and documentation examples; ``lengths[k]`` is the
    execution time of the k-th stage.
    """
    graph = TaskGraph(name=name)
    for idx, length in enumerate(lengths):
        graph.add_op(idx, execution_time=length)
    for idx in range(len(lengths) - 1):
        graph.connect(idx, idx + 1, size_bytes=size_bytes)
    graph.validate()
    return graph
