"""Periodic task-graph application model (paper Section 2.2).

A CNN application is modelled as a weighted directed acyclic graph
``G = (V, E, P, R)`` executed periodically:

* vertices are convolution / pooling operations (:class:`Operation`),
* edges carry intermediate processing results (:class:`IntermediateResult`),
* ``P`` associates each intermediate result with placement profits
  (on-chip cache vs. stacked eDRAM),
* ``R`` is the retiming function computed by :mod:`repro.core.retiming`.
"""

from repro.graph.taskgraph import (
    GraphValidationError,
    IntermediateResult,
    Operation,
    OperationKind,
    TaskGraph,
)
from repro.graph.instances import OperationInstance, IntermediateInstance, unroll
from repro.graph.generators import (
    SyntheticGraphGenerator,
    generate_series_parallel,
    synthetic_benchmark,
)
from repro.graph.analysis import (
    critical_path,
    critical_path_length,
    degree_histogram,
    graph_statistics,
    max_parallelism,
    parallelism_profile,
)
from repro.graph.io import graph_from_dict, graph_from_json, graph_to_dict, graph_to_json
from repro.graph.randwired import (
    RandwiredSpec,
    barabasi_albert_dag,
    erdos_renyi_dag,
    randwired_benchmark,
    randwired_graph,
    watts_strogatz_dag,
)
from repro.graph.transforms import coarsen_chains, fuse_stages

__all__ = [
    "coarsen_chains",
    "fuse_stages",
    "GraphValidationError",
    "IntermediateInstance",
    "IntermediateResult",
    "Operation",
    "OperationInstance",
    "OperationKind",
    "RandwiredSpec",
    "SyntheticGraphGenerator",
    "TaskGraph",
    "barabasi_albert_dag",
    "critical_path",
    "critical_path_length",
    "degree_histogram",
    "erdos_renyi_dag",
    "generate_series_parallel",
    "graph_from_dict",
    "graph_from_json",
    "graph_statistics",
    "graph_to_dict",
    "graph_to_json",
    "max_parallelism",
    "parallelism_profile",
    "randwired_benchmark",
    "randwired_graph",
    "synthetic_benchmark",
    "unroll",
    "watts_strogatz_dag",
]
