"""Structural analysis of task graphs.

These helpers feed the schedulers (critical-path priorities, load-balance
bounds) and the evaluation harness (parallelism saturation explains the
Figure 6 plateau between 32 and 64 processing engines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.graph.taskgraph import IntermediateResult, TaskGraph

EdgeLatency = Callable[[IntermediateResult], int]


def _zero_latency(_edge: IntermediateResult) -> int:
    return 0


def critical_path_length(
    graph: TaskGraph, edge_latency: Optional[EdgeLatency] = None
) -> int:
    """Length of the longest weighted path (execution + edge latencies).

    This is the iteration-latency lower bound for any scheduler that honors
    intra-iteration dependencies (i.e. the baseline); Para-CONV's retiming
    removes this bound from the steady-state kernel.
    """
    latency = edge_latency or _zero_latency
    finish: Dict[int, int] = {}
    for op_id in graph.topological_order():
        op = graph.operation(op_id)
        ready = 0
        for edge in graph.in_edges(op_id):
            ready = max(ready, finish[edge.producer] + latency(edge))
        finish[op_id] = ready + op.execution_time
    return max(finish.values(), default=0)


def critical_path(
    graph: TaskGraph, edge_latency: Optional[EdgeLatency] = None
) -> List[int]:
    """One longest weighted path, as a list of op_ids in execution order."""
    latency = edge_latency or _zero_latency
    finish: Dict[int, int] = {}
    best_pred: Dict[int, Optional[int]] = {}
    for op_id in graph.topological_order():
        op = graph.operation(op_id)
        ready, pred = 0, None
        for edge in graph.in_edges(op_id):
            candidate = finish[edge.producer] + latency(edge)
            if candidate > ready:
                ready, pred = candidate, edge.producer
        finish[op_id] = ready + op.execution_time
        best_pred[op_id] = pred
    if not finish:
        return []
    tail = max(finish, key=lambda i: (finish[i], -i))
    path: List[int] = []
    node: Optional[int] = tail
    while node is not None:
        path.append(node)
        node = best_pred[node]
    path.reverse()
    return path


def asap_levels(graph: TaskGraph) -> Dict[int, int]:
    """As-soon-as-possible topological level of every operation (unit delays)."""
    level: Dict[int, int] = {}
    for op_id in graph.topological_order():
        preds = graph.predecessors(op_id)
        level[op_id] = 1 + max((level[p] for p in preds), default=-1)
    return level


def parallelism_profile(graph: TaskGraph) -> List[int]:
    """Number of operations per ASAP level.

    ``profile[k]`` counts operations that *could* start concurrently at level
    ``k`` with unlimited PEs. Its maximum bounds how many PEs an un-retimed
    iteration can exploit.
    """
    levels = asap_levels(graph)
    if not levels:
        return []
    depth = max(levels.values()) + 1
    profile = [0] * depth
    for lvl in levels.values():
        profile[lvl] += 1
    return profile


def max_parallelism(graph: TaskGraph) -> int:
    """Peak of :func:`parallelism_profile` (0 for the empty graph)."""
    profile = parallelism_profile(graph)
    return max(profile) if profile else 0


def degree_histogram(graph: TaskGraph) -> Dict[str, Dict[int, int]]:
    """Histograms of in- and out-degrees, keyed ``'in'`` / ``'out'``."""
    hist: Dict[str, Dict[int, int]] = {"in": {}, "out": {}}
    for op in graph.operations():
        din = graph.in_degree(op.op_id)
        dout = graph.out_degree(op.op_id)
        hist["in"][din] = hist["in"].get(din, 0) + 1
        hist["out"][dout] = hist["out"].get(dout, 0) + 1
    return hist


@dataclass(frozen=True)
class GraphStatistics:
    """Summary record used by reports and the benchmark tables."""

    name: str
    num_vertices: int
    num_edges: int
    total_work: int
    critical_path_length: int
    max_parallelism: int
    depth: int
    avg_out_degree: float

    def as_row(self) -> Tuple[str, int, int, int, int, int, int, float]:
        return (
            self.name,
            self.num_vertices,
            self.num_edges,
            self.total_work,
            self.critical_path_length,
            self.max_parallelism,
            self.depth,
            round(self.avg_out_degree, 2),
        )


def graph_statistics(graph: TaskGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``graph``."""
    profile = parallelism_profile(graph)
    n = graph.num_vertices
    return GraphStatistics(
        name=graph.name,
        num_vertices=n,
        num_edges=graph.num_edges,
        total_work=graph.total_work(),
        critical_path_length=critical_path_length(graph),
        max_parallelism=max(profile) if profile else 0,
        depth=len(profile),
        avg_out_degree=(graph.num_edges / n) if n else 0.0,
    )
