"""Synthetic task-graph generators (paper Section 4.1).

The paper evaluates on 12 task graphs "obtained by running several CNN
applications" and reports only their vertex/edge counts (Table 1). The
generator here reproduces those counts *exactly* with a seeded, layered
TGFF-style construction:

1. vertices ``0 .. n-1`` are laid out in topological order,
2. every non-source vertex receives one backbone edge from a nearby earlier
   vertex (guaranteeing a connected layered DAG, as CNN dataflows are),
3. the remaining edges are drawn uniformly from the not-yet-used forward
   pairs within a locality window, mimicking the short-range skip/branch
   connections of inception-style networks.

Execution times, intermediate-result sizes and conv/pool kinds are drawn
from seeded distributions so every benchmark is fully reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graph.taskgraph import (
    GraphValidationError,
    OperationKind,
    TaskGraph,
)

#: Published (num_vertices, num_edges) of the paper's benchmarks (Table 1).
BENCHMARK_SIZES: Dict[str, Tuple[int, int]] = {
    "cat": (9, 21),
    "car": (13, 28),
    "flower": (21, 51),
    "character-1": (46, 121),
    "character-2": (52, 130),
    "image-compress": (70, 178),
    "stock-predict": (83, 218),
    "string-matching": (102, 267),
    "shortest-path": (191, 506),
    "speech-1": (247, 652),
    "speech-2": (369, 981),
    "protein": (546, 1449),
}

#: Stable per-benchmark seeds so graphs never change between runs.
_BENCHMARK_SEEDS: Dict[str, int] = {
    name: 0xC0DE + index for index, name in enumerate(BENCHMARK_SIZES)
}


@dataclass(frozen=True)
class GeneratorParams:
    """Tunable knobs of :class:`SyntheticGraphGenerator`.

    Attributes:
        locality: maximum topological distance an edge may span, as a
            fraction of ``n`` (CNN dataflows are short-range); at least a
            window of 8 vertices is always allowed so tiny graphs stay
            constructible.
        min_exec / max_exec: inclusive range of operation execution times.
        min_size / max_size: inclusive range of intermediate-result sizes
            (bytes).
        pool_fraction: fraction of vertices marked as pooling operations.
    """

    locality: float = 0.25
    min_exec: int = 1
    max_exec: int = 3
    min_size: int = 256
    max_size: int = 4096
    pool_fraction: float = 0.2

    def __post_init__(self) -> None:
        if not 0 < self.locality <= 1:
            raise GraphValidationError("locality must be in (0, 1]")
        if self.min_exec < 1 or self.max_exec < self.min_exec:
            raise GraphValidationError("invalid execution-time range")
        if self.min_size < 1 or self.max_size < self.min_size:
            raise GraphValidationError("invalid size range")
        if not 0 <= self.pool_fraction < 1:
            raise GraphValidationError("pool_fraction must be in [0, 1)")


class SyntheticGraphGenerator:
    """Seeded layered-DAG generator with exact vertex/edge counts."""

    def __init__(self, params: Optional[GeneratorParams] = None):
        self.params = params or GeneratorParams()

    def generate(
        self,
        num_vertices: int,
        num_edges: int,
        seed: int = 0,
        name: str = "synthetic",
    ) -> TaskGraph:
        """Generate a DAG with exactly the requested vertex and edge counts.

        Raises :class:`GraphValidationError` when the request is
        unsatisfiable (fewer edges than needed for weak connectivity, or more
        than the forward pairs available inside the locality window).
        """
        if num_vertices < 2:
            raise GraphValidationError("need at least 2 vertices")
        if num_edges < num_vertices - 1:
            raise GraphValidationError(
                f"need >= {num_vertices - 1} edges to keep {num_vertices} "
                "vertices connected"
            )
        window = self._window(num_vertices)
        capacity = self._capacity(num_vertices, window)
        if num_edges > capacity:
            raise GraphValidationError(
                f"{num_edges} edges exceed the {capacity} forward pairs "
                f"available with locality window {window}"
            )

        rng = random.Random(seed)
        graph = TaskGraph(name=name)
        pool_count = int(self.params.pool_fraction * num_vertices)
        pool_ids = set(rng.sample(range(1, num_vertices), pool_count)) if pool_count else set()
        for op_id in range(num_vertices):
            graph.add_op(
                op_id,
                execution_time=rng.randint(self.params.min_exec, self.params.max_exec),
                kind=OperationKind.POOL if op_id in pool_ids else OperationKind.CONV,
            )

        used = set()
        # Backbone: one incoming edge per non-source vertex, short range.
        for consumer in range(1, num_vertices):
            producer = rng.randint(max(0, consumer - window), consumer - 1)
            used.add((producer, consumer))
        # Extra edges: sample unused forward pairs inside the window.
        while len(used) < num_edges:
            consumer = rng.randint(1, num_vertices - 1)
            producer = rng.randint(max(0, consumer - window), consumer - 1)
            used.add((producer, consumer))

        for producer, consumer in sorted(used):
            graph.connect(
                producer,
                consumer,
                size_bytes=rng.randint(self.params.min_size, self.params.max_size),
            )
        graph.validate()
        assert graph.num_vertices == num_vertices
        assert graph.num_edges == num_edges
        return graph

    def _window(self, num_vertices: int) -> int:
        return max(8, int(self.params.locality * num_vertices))

    @staticmethod
    def _capacity(num_vertices: int, window: int) -> int:
        """Number of forward pairs ``(i, j)`` with ``0 < j - i <= window``."""
        total = 0
        for consumer in range(1, num_vertices):
            total += min(window, consumer)
        return total


def generate_series_parallel(
    depth: int,
    branches: int,
    seed: int = 0,
    params: Optional[GeneratorParams] = None,
    name: str = "series-parallel",
) -> TaskGraph:
    """A series-parallel fork/join graph (inception-module macro-structure).

    ``depth`` fork/join stages in series; each stage forks into
    ``branches`` parallel two-operation branches that join into a single
    merge vertex -- the shape of stacked inception modules, and a useful
    structural contrast to the window-local random family when checking
    that conclusions are not generator artifacts.
    """
    if depth < 1 or branches < 1:
        raise GraphValidationError("depth and branches must be >= 1")
    rng = random.Random(seed)
    p = params or GeneratorParams()
    graph = TaskGraph(name=name)

    def new_op(op_id: int) -> int:
        graph.add_op(
            op_id,
            execution_time=rng.randint(p.min_exec, p.max_exec),
            kind=OperationKind.CONV,
        )
        return op_id

    def connect(src: int, dst: int) -> None:
        graph.connect(src, dst, size_bytes=rng.randint(p.min_size, p.max_size))

    next_id = 0
    source = new_op(next_id)
    next_id += 1
    for _stage in range(depth):
        join = None
        branch_tails = []
        for _branch in range(branches):
            first = new_op(next_id)
            next_id += 1
            second = new_op(next_id)
            next_id += 1
            connect(source, first)
            connect(first, second)
            branch_tails.append(second)
        join = new_op(next_id)
        next_id += 1
        for tail in branch_tails:
            connect(tail, join)
        source = join
    graph.validate()
    return graph


def synthetic_benchmark(
    name: str,
    params: Optional[GeneratorParams] = None,
    seed: Optional[int] = None,
) -> TaskGraph:
    """Regenerate one of the paper's named benchmarks by exact size.

    ``synthetic_benchmark("protein")`` yields a 546-vertex / 1449-edge graph
    identical across runs (fixed per-benchmark seed unless overridden).
    """
    try:
        num_vertices, num_edges = BENCHMARK_SIZES[name]
    except KeyError:
        known = ", ".join(sorted(BENCHMARK_SIZES))
        raise GraphValidationError(
            f"unknown benchmark {name!r}; known benchmarks: {known}"
        ) from None
    generator = SyntheticGraphGenerator(params)
    actual_seed = _BENCHMARK_SEEDS[name] if seed is None else seed
    return generator.generate(num_vertices, num_edges, seed=actual_seed, name=name)


def all_synthetic_benchmarks(
    params: Optional[GeneratorParams] = None,
) -> List[TaskGraph]:
    """All 12 paper benchmarks, in Table 1 (size) order."""
    return [synthetic_benchmark(name, params) for name in BENCHMARK_SIZES]
