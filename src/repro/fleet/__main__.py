"""Fleet CLI: trace-driven bench and ring inspection.

Usage::

    python -m repro.fleet bench [--workers 4] [--requests 1000000] ...
    python -m repro.fleet route [--workers 4] [--workloads a,b,c]

``bench`` drives a deterministic synthetic trace through a sharded fleet
(optionally killing a worker mid-run) and writes ``BENCH_fleet.json``
with per-SLO-class latency percentiles, cache hit ratios and exact
request accounting. Exits non-zero if any admitted request was lost.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from typing import List, Optional

from repro.cnn.workloads import WORKLOADS
from repro.core.allocation import ALLOCATORS
from repro.eval.bench_io import dump_bench
from repro.pim.config import PimConfig

from repro.fleet.hashing import HashRing
from repro.fleet.loadgen import FleetLoadGenerator, run_bench
from repro.fleet.router import FleetRouter
from repro.fleet.slo import DEFAULT_SLO_POLICIES, SloClass, SloPolicy
from repro.fleet.store import SharedPlanStore
from repro.fleet.worker import FleetWorker

# Bench defaults: paper workloads whose steady-state sim converges to a
# limit cycle at shard scale, so per-batch cost is O(1) in iterations and
# a million-request trace finishes in minutes.
DEFAULT_WORKLOADS = "flower,lenet5,stock-predict,string-matching"


def positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not an integer"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Sharded fleet serving: bench and routing inspection.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser(
        "bench", help="run the trace-driven fleet bench"
    )
    bench.add_argument(
        "--workers", type=positive_int, default=4,
        help="number of fleet shards",
    )
    bench.add_argument(
        "--pes", type=positive_int, default=64,
        help="total PEs in the physical machine (split across shards)",
    )
    bench.add_argument(
        "--vaults", type=positive_int, default=32,
        help="total vaults in the physical machine",
    )
    bench.add_argument(
        "--requests", type=positive_int, default=1_000_000,
        help="trace length",
    )
    bench.add_argument(
        "--workloads", default=DEFAULT_WORKLOADS,
        help="comma-separated workload names",
    )
    bench.add_argument(
        "--batch-window", type=positive_int, default=512,
        help="per-shard batch window",
    )
    bench.add_argument(
        "--max-queue", type=positive_int, default=200_000,
        help="per-shard queue bound",
    )
    bench.add_argument(
        "--interarrival", type=positive_int, default=8,
        help="mean interarrival gap in simulated time units",
    )
    bench.add_argument(
        "--pump-every", type=positive_int, default=512,
        help="serve the fleet after every N submissions",
    )
    bench.add_argument(
        "--allocator", default="dp", choices=sorted(ALLOCATORS),
        help="cache-allocation strategy",
    )
    bench.add_argument(
        "--seed", type=int, default=0, help="trace seed"
    )
    bench.add_argument(
        "--no-kill", action="store_true",
        help="skip the mid-run worker kill (healthy-fleet bench)",
    )
    bench.add_argument(
        "--kill-after", type=positive_int, default=None,
        help="request index for the worker kill (default: halfway)",
    )
    bench.add_argument(
        "--deadline", type=positive_int, default=None,
        help="interactive-class dispatch deadline in time units "
             "(default: no shedding)",
    )
    bench.add_argument(
        "--store", default=None, metavar="DIR",
        help="shared plan-store directory (default: fresh temp dir)",
    )
    bench.add_argument(
        "--out", default="BENCH_fleet.json",
        help="report path ('-' for stdout only)",
    )
    bench.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )

    route = sub.add_parser(
        "route", help="print the ring assignment per workload"
    )
    route.add_argument("--workers", type=positive_int, default=4)
    route.add_argument("--pes", type=positive_int, default=64)
    route.add_argument("--vaults", type=positive_int, default=32)
    route.add_argument("--workloads", default=DEFAULT_WORKLOADS)
    route.add_argument(
        "--allocator", default="dp", choices=sorted(ALLOCATORS)
    )
    return parser


def parse_workloads(text: str) -> List[str]:
    names = [w.strip() for w in text.split(",") if w.strip()]
    unknown = [w for w in names if w not in WORKLOADS]
    if unknown:
        raise SystemExit(
            f"unknown workloads {unknown}; known: {', '.join(sorted(WORKLOADS))}"
        )
    if not names:
        raise SystemExit("no workloads given")
    return names


def build_fleet(
    num_workers: int,
    pes: int,
    vaults: int,
    store: SharedPlanStore,
    batch_window: int = 8,
    max_queue: int = 4096,
    allocator: str = "dp",
    policies=None,
) -> FleetRouter:
    """A router over ``num_workers`` equal shards of one physical machine."""
    machine = PimConfig(num_pes=pes)
    shards = machine.split(num_workers, num_vaults=vaults)
    workers = [
        FleetWorker(
            f"worker-{index}",
            shard,
            store=store,
            batch_window=batch_window,
            max_queue=max_queue,
            allocator=allocator,
        )
        for index, shard in enumerate(shards)
    ]
    return FleetRouter(workers, policies=policies)


def cmd_bench(args: argparse.Namespace) -> int:
    workloads = parse_workloads(args.workloads)
    policies = None
    if args.deadline is not None:
        policies = dict(DEFAULT_SLO_POLICIES)
        policies[SloClass.INTERACTIVE] = SloPolicy(
            max_queue_depth=policies[SloClass.INTERACTIVE].max_queue_depth,
            deadline_units=args.deadline,
        )
    if args.store is not None:
        store_dir: Optional[tempfile.TemporaryDirectory] = None
        store = SharedPlanStore(args.store)
    else:
        store_dir = tempfile.TemporaryDirectory(prefix="fleet-store-")
        store = SharedPlanStore(store_dir.name)
    try:
        router = build_fleet(
            args.workers,
            args.pes,
            args.vaults,
            store,
            batch_window=args.batch_window,
            max_queue=args.max_queue,
            allocator=args.allocator,
            policies=policies,
        )
        kill_worker_id = (
            None if args.no_kill or args.workers < 2
            else f"worker-{args.workers - 1}"
        )
        report = run_bench(
            router,
            FleetLoadGenerator(
                workloads,
                mean_interarrival_units=args.interarrival,
                seed=args.seed,
            ),
            num_requests=args.requests,
            kill_worker_id=kill_worker_id,
            kill_after=args.kill_after,
            pump_every=args.pump_every,
        )
    finally:
        if store_dir is not None:
            store_dir.cleanup()

    if args.out != "-":
        dump_bench(args.out, report)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        accounting = report["accounting"]
        print(
            f"fleet bench: {report['num_requests']} requests over "
            f"{report['num_workers']} workers "
            f"({report['live_workers']} live at end)"
        )
        if report["kill_worker_id"] is not None:
            print(
                f"  killed {report['kill_worker_id']} after request "
                f"{report['kill_after']}; rerouted "
                f"{report['rerouted_on_kill']} queued requests"
            )
        for name in ("admitted", "served", "shed", "rejected_at_admission",
                     "rerouted", "lost"):
            print(f"  {name:>22}: {accounting[name]}")
        for label, stats in report["latency_units"].items():
            if not stats["count"]:
                continue
            print(
                f"  latency[{label}]: p50={stats['p50']:.0f} "
                f"p95={stats['p95']:.0f} p99={stats['p99']:.0f} "
                f"(n={stats['count']})"
            )
        cache = report["cache"]
        print(
            f"  plan cache: hit_rate={cache['hit_rate']:.4f} "
            f"(hits={cache['hits']} misses={cache['misses']} "
            f"disk_hits={cache['disk_hits']})"
        )
        print(
            f"  wall: {report['wall_seconds']:.2f}s "
            f"({report['requests_per_second']:.0f} req/s)"
        )
        if args.out != "-":
            print(f"  report: {args.out}")
    return 0 if report["accounting"]["lost"] == 0 else 1


def cmd_route(args: argparse.Namespace) -> int:
    workloads = parse_workloads(args.workloads)
    with tempfile.TemporaryDirectory(prefix="fleet-route-") as tmp:
        router = build_fleet(
            args.workers,
            args.pes,
            args.vaults,
            SharedPlanStore(tmp),
            allocator=args.allocator,
        )
        print(
            f"ring: {len(router.workers)} workers x "
            f"{router.ring.replicas} replicas"
        )
        for workload in workloads:
            key = router.affinity_key(workload)
            print(
                f"  {workload:>20} -> {router.worker_for(workload).worker_id}"
                f"  (plan {key[:12]})"
            )
        spread = router.ring.spread(
            [router.affinity_key(w) for w in workloads]
        )
        print(f"  spread: {dict(sorted(spread.items()))}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "route":
        return cmd_route(args)
    raise SystemExit(f"unknown command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
