"""Shared content-addressed plan-artifact tier.

One directory of ``<digest>.json`` plan payloads (the
:mod:`repro.runtime.plan_cache` disk format) shared by every worker in a
fleet: a plan compiled on *any* shard is published here and becomes a
warm disk hit for every other shard that ever needs it — compile once,
warm everywhere. The store is safe for concurrent writers across threads,
workers and whole processes:

* every write stages into a uniquely named temp file and publishes with
  an atomic ``os.replace`` (readers see complete payloads only), and
* direct :meth:`SharedPlanStore.put` calls additionally serialize through
  an advisory file lock (``fcntl.flock`` where available), so two
  processes publishing the same digest never race the rename storm —
  last-writer-wins is benign anyway because equal keys serialize
  identical plans, but the lock keeps write accounting exact.

Workers normally reach the store through :meth:`open_cache`, which binds
an ordinary two-tier :class:`~repro.runtime.plan_cache.PlanCache` to the
shared directory — the memory LRU stays private per worker, the disk
tier is the fleet-wide artifact store.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

try:  # pragma: no cover - platform availability, not logic
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.core.paraconv import ParaConvResult
from repro.runtime.plan_cache import (
    PlanCache,
    PlanKey,
    plan_from_dict,
    plan_to_dict,
)


@dataclass
class StoreStats:
    """Read/write accounting for one :class:`SharedPlanStore` handle."""

    reads: int = 0
    read_hits: int = 0
    writes: int = 0
    corrupt_payloads: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "reads": self.reads,
            "read_hits": self.read_hits,
            "writes": self.writes,
            "corrupt_payloads": self.corrupt_payloads,
        }


class SharedPlanStore:
    """A directory of content-addressed compiled plans shared by a fleet.

    Args:
        directory: the artifact directory (created immediately, so a
            fleet of workers can all bind caches to it without racing
            ``mkdir``).
        verify_on_load: forwarded to every cache built by
            :meth:`open_cache` — hydrated plans are pushed through the
            invariant validator before being served.
    """

    LOCK_FILE = ".store.lock"

    def __init__(
        self,
        directory: Union[str, Path],
        verify_on_load: bool = False,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.verify_on_load = verify_on_load
        self.stats = StoreStats()

    # -- cache integration --------------------------------------------
    def open_cache(self, capacity: int = 32) -> PlanCache:
        """A per-worker two-tier cache whose disk tier is this store."""
        return PlanCache(
            capacity=capacity,
            disk_dir=self.directory,
            verify_on_load=self.verify_on_load,
        )

    # -- direct artifact access ---------------------------------------
    def _path(self, digest: str) -> Path:
        return self.directory / f"{digest}.json"

    def digests(self) -> List[str]:
        """Digests of every published plan, sorted."""
        return sorted(p.stem for p in self.directory.glob("*.json"))

    def __len__(self) -> int:
        return len(self.digests())

    def __contains__(self, key: "PlanKey | str") -> bool:
        digest = key.digest if isinstance(key, PlanKey) else key
        return self._path(digest).is_file()

    @contextlib.contextmanager
    def _write_lock(self):
        """Advisory cross-process write lock (no-op where unsupported)."""
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        lock_path = self.directory / self.LOCK_FILE
        with open(lock_path, "w") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def put(self, key: "PlanKey | str", plan: ParaConvResult) -> str:
        """Publish one plan under its digest; returns the digest."""
        digest = key.digest if isinstance(key, PlanKey) else str(key)
        payload = json.dumps(plan_to_dict(plan))
        with self._write_lock():
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".{digest}.", suffix=".tmp", dir=self.directory
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp_name, self._path(digest))
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_name)
                raise
        self.stats.writes += 1
        return digest

    def get(self, key: "PlanKey | str") -> Optional[ParaConvResult]:
        """Hydrate one plan (``None`` on absent or corrupt payloads)."""
        digest = key.digest if isinstance(key, PlanKey) else str(key)
        self.stats.reads += 1
        path = self._path(digest)
        if not path.is_file():
            return None
        try:
            plan = plan_from_dict(json.loads(path.read_text()))
        except Exception:
            # Corrupt artifacts degrade to a miss, mirroring PlanCache.
            self.stats.corrupt_payloads += 1
            return None
        self.stats.read_hits += 1
        return plan

    def describe(self) -> str:
        return (
            f"SharedPlanStore({self.directory}): {len(self)} plans, "
            f"{self.stats.writes} writes / {self.stats.read_hits}/"
            f"{self.stats.reads} read hits"
        )
