"""Consistent hashing for plan-affinity request routing.

The fleet routes every request by the fingerprint of the plan it needs,
so requests for the same plan always land on the same shard — the shard
whose warm :class:`~repro.runtime.plan_cache.PlanCache` already holds the
compiled schedule. A consistent-hash ring gives that affinity *and*
minimal disruption: when one of ``N`` shards dies, only ~``1/N`` of the
key space re-maps (to the dead shard's ring successors), so the
survivors' warm caches keep serving everything they already owned.

Hash points come from SHA-256, never from Python's builtin ``hash`` —
routing must be identical across processes and interpreter restarts
(``PYTHONHASHSEED`` randomizes ``hash(str)``), because a restarted router
that re-shuffled the key space would turn every warm cache cold.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple


class EmptyRingError(RuntimeError):
    """Routing was attempted against a ring with no members."""


def _hash_point(data: str) -> int:
    """Deterministic 64-bit ring position for one string."""
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over named members.

    Args:
        members: initial member names (shard ids).
        replicas: virtual nodes per member. More replicas smooth the
            key-space split between members (the classic variance
            reduction); 64 keeps the remap fraction after one removal
            within a few points of the ideal ``1/N`` for small fleets.
    """

    def __init__(
        self, members: Sequence[str] = (), replicas: int = 64
    ):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: List[Tuple[int, str]] = []
        self._members: Dict[str, bool] = {}
        for member in members:
            self.add(member)

    # -- membership ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    def members(self) -> List[str]:
        """Current member names, sorted."""
        return sorted(self._members)

    def add(self, member: str) -> None:
        """Add a member (idempotent is an error: duplicate names would
        silently double the member's key-space share)."""
        if member in self._members:
            raise ValueError(f"member {member!r} already on the ring")
        self._members[member] = True
        for replica in range(self.replicas):
            point = _hash_point(f"member:{member}#{replica}")
            bisect.insort(self._points, (point, member))

    def remove(self, member: str) -> None:
        """Remove a member; its key ranges fall to the ring successors."""
        if member not in self._members:
            raise ValueError(f"member {member!r} not on the ring")
        del self._members[member]
        self._points = [
            (point, name) for point, name in self._points if name != member
        ]

    # -- routing -------------------------------------------------------
    def route(self, key: str) -> str:
        """The member owning ``key``: first ring point at or after the
        key's hash, wrapping at the top of the space."""
        if not self._points:
            raise EmptyRingError("cannot route on an empty ring")
        point = _hash_point(f"key:{key}")
        index = bisect.bisect_left(self._points, (point, ""))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def spread(self, keys: Sequence[str]) -> Dict[str, int]:
        """Keys-per-member census for a sample of keys (diagnostics)."""
        counts = {member: 0 for member in self._members}
        for key in keys:
            counts[self.route(key)] += 1
        return counts
