"""Trace-driven fleet load generation and the bench harness.

:class:`FleetLoadGenerator` synthesizes a deterministic open-loop arrival
trace — Poisson-like interarrivals, weighted workload mix, weighted SLO
mix — from one seed. The same seed always yields the same trace, on any
host, in any process (the generator builds a fresh ``random.Random`` per
iteration, so two passes over the same generator agree byte for byte).

:func:`run_bench` pushes a trace through a :class:`FleetRouter` in
virtual time: advance the clock to each arrival, submit (with typed
backpressure handled by pumping, never by dropping), optionally kill a
worker mid-run, then drain and assemble the ``BENCH_fleet.json`` report —
per-SLO-class latency percentiles, cache hit ratios and exact request
conservation (``lost`` must be zero, worker death included).
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

from repro.eval.bench_io import new_report
from repro.runtime.server import QueueFullError

from repro.fleet.router import FleetRouter
from repro.fleet.slo import FleetAdmissionError, SloClass

#: Default SLO traffic mix: mostly standard, some interactive, some batch.
DEFAULT_SLO_MIX: Dict[SloClass, float] = {
    SloClass.INTERACTIVE: 0.2,
    SloClass.STANDARD: 0.6,
    SloClass.BATCH: 0.2,
}


@dataclass(frozen=True)
class TraceRequest:
    """One arrival in a synthesized fleet trace."""

    arrival_units: int
    workload: str
    slo: SloClass
    iterations: int = 1


class FleetLoadGenerator:
    """Deterministic open-loop trace synthesizer.

    Args:
        workloads: workload names to draw from.
        weights: relative draw weight per workload (defaults to uniform).
        slo_mix: relative draw weight per :class:`SloClass` (defaults to
            :data:`DEFAULT_SLO_MIX`).
        mean_interarrival_units: mean gap between arrivals in simulated
            time units; gaps are exponentially distributed (Poisson
            arrivals), quantized to integer units.
        seed: trace seed. Same seed, same trace — everywhere.
    """

    def __init__(
        self,
        workloads: Sequence[str],
        weights: Optional[Sequence[float]] = None,
        slo_mix: Optional[Mapping[SloClass, float]] = None,
        mean_interarrival_units: int = 8,
        seed: int = 0,
    ):
        if not workloads:
            raise ValueError("need at least one workload")
        self.workloads = list(workloads)
        self.weights = (
            list(weights) if weights is not None else [1.0] * len(workloads)
        )
        if len(self.weights) != len(self.workloads):
            raise ValueError(
                f"{len(self.weights)} weights for "
                f"{len(self.workloads)} workloads"
            )
        mix = dict(slo_mix) if slo_mix is not None else dict(DEFAULT_SLO_MIX)
        self.slo_classes = [s for s in SloClass if mix.get(s, 0.0) > 0.0]
        self.slo_weights = [mix[s] for s in self.slo_classes]
        if not self.slo_classes:
            raise ValueError("slo_mix assigns no positive weight")
        if mean_interarrival_units < 1:
            raise ValueError("mean_interarrival_units must be >= 1")
        self.mean_interarrival_units = mean_interarrival_units
        self.seed = seed

    def requests(self, count: int) -> Iterator[TraceRequest]:
        """Yield ``count`` arrivals; deterministic per (seed, count)."""
        rng = random.Random(self.seed)
        arrival = 0
        for _ in range(count):
            # Inverse-CDF exponential gap from one uniform draw, floored
            # into integer units (always advancing at least 0 units).
            gap = -self.mean_interarrival_units * math.log(
                1.0 - rng.random()
            )
            arrival += int(gap)
            workload = rng.choices(self.workloads, self.weights)[0]
            slo = rng.choices(self.slo_classes, self.slo_weights)[0]
            yield TraceRequest(
                arrival_units=arrival, workload=workload, slo=slo
            )


def _percentiles(values: List[int]) -> Dict[str, float]:
    """p50/p95/p99 by nearest-rank on a sorted copy (exact, no interp)."""
    if not values:
        return {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    ordered = sorted(values)
    n = len(ordered)

    def rank(q: float) -> float:
        return float(ordered[min(n - 1, max(0, math.ceil(q * n) - 1))])

    return {
        "count": n,
        "p50": rank(0.50),
        "p95": rank(0.95),
        "p99": rank(0.99),
        "mean": sum(ordered) / n,
        "max": float(ordered[-1]),
    }


def run_bench(
    router: FleetRouter,
    generator: FleetLoadGenerator,
    num_requests: int,
    kill_worker_id: Optional[str] = None,
    kill_after: Optional[int] = None,
    pump_every: int = 512,
) -> Dict[str, Any]:
    """Drive one trace through the fleet and report.

    Args:
        router: the fleet under test.
        generator: arrival-trace source.
        num_requests: trace length.
        kill_worker_id: worker to kill mid-run (fleet failover path);
            ``None`` runs the healthy-fleet bench.
        kill_after: request index at which the kill fires (defaults to
            the halfway point).
        pump_every: serve the fleet after every this many submissions —
            the open-loop analogue of the batch window.

    Returns the ``BENCH_fleet/v1`` report dict. Raises ``RuntimeError``
    if accounting shows a lost request (it never should).
    """
    if kill_worker_id is not None and kill_after is None:
        kill_after = num_requests // 2
    per_class: Dict[SloClass, List[int]] = {s: [] for s in SloClass}
    overall: List[int] = []
    started = time.perf_counter()

    def absorb(results) -> None:
        for res in results:
            per_class[res.slo].append(res.latency_units)
            overall.append(res.latency_units)

    submitted = 0
    rerouted = 0
    for trace in generator.requests(num_requests):
        router.advance_to(trace.arrival_units)
        if (
            kill_worker_id is not None
            and submitted == kill_after
            and router.workers[kill_worker_id].alive
        ):
            rerouted = router.kill_worker(kill_worker_id)
        while True:
            try:
                router.submit(
                    trace.workload, iterations=trace.iterations, slo=trace.slo
                )
                break
            except (FleetAdmissionError, QueueFullError):
                # Typed backpressure: serve, then retry the same arrival.
                absorb(router.pump())
        submitted += 1
        if submitted % pump_every == 0:
            absorb(router.pump())
    absorb(router.drain())
    wall_seconds = time.perf_counter() - started

    accounting = router.accounting()
    if accounting["lost"] != 0:
        raise RuntimeError(f"fleet lost requests: {accounting}")
    report: Dict[str, Any] = new_report("fleet", {
        "num_requests": num_requests,
        "num_workers": len(router.workers),
        "live_workers": sum(
            1 for w in router.workers.values() if w.alive
        ),
        "workloads": generator.workloads,
        "seed": generator.seed,
        "mean_interarrival_units": generator.mean_interarrival_units,
        "kill_worker_id": kill_worker_id,
        "kill_after": kill_after if kill_worker_id is not None else None,
        "rerouted_on_kill": rerouted,
        "accounting": accounting,
        "latency_units": {
            "overall": _percentiles(overall),
            **{
                slo.value: _percentiles(values)
                for slo, values in per_class.items()
            },
        },
        "cache": router.cache_summary(),
        "workers": [
            w.snapshot() for w in router.workers.values()
        ],
        "wall_seconds": wall_seconds,
        "requests_per_second": (
            len(overall) / wall_seconds if wall_seconds > 0 else 0.0
        ),
    })
    return report
