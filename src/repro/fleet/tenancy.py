"""Multi-tenant scheduling over one spatially partitioned machine.

The placement half of multi-tenancy lives in :mod:`repro.pim.tenancy`
(pure config carving); this module is the *serving* half. A
:class:`TenantScheduler` runs one deterministic
:class:`~repro.runtime.server.BatchingServer` per tenant, each on the
tenant's *partition* view — not ``.logical`` as the fleet shards do —
so every tenant's plans carry the physical ``pe_mask`` in their cache
identity and a shared :class:`~repro.runtime.plan_cache.PlanCache` can
never cross-serve plans between tenants.

Scheduling across tenants is SLO-class-strictest-first with a
fair-share tie-break on each tenant's simulated-time horizon: tenants
occupy *disjoint* hardware, so their virtual clocks advance
independently — serving tenant A never delays tenant B's simulated
time, which is exactly the isolation property the
``repro.verify.differential_tenancy`` battery checks (co-resident
aggregates == sum of isolated runs).

Per-tenant metrics stay on each tenant's own registry; the fleet view
namespaces them as ``tenant.<name>.<instrument>`` and folds the
aggregate through the existing :meth:`MetricsRegistry.merge`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.fleet.slo import (
    DEFAULT_SLO_POLICIES,
    FleetAdmissionError,
    SloClass,
    SloPolicy,
)
from repro.pim.tenancy import TenantPlacement
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.plan_cache import PlanCache
from repro.runtime.server import BatchingServer, InferenceRequest, RequestResult


class TenancyError(ValueError):
    """Raised for unknown tenants or malformed scheduler configuration."""


#: Strictest-first ordering used by the cross-tenant scheduler.
_SLO_ORDER = {slo: index for index, slo in enumerate(SloClass)}


@dataclass(frozen=True)
class TenantResult:
    """One served request, attributed to its tenant."""

    tenant: str
    result: RequestResult

    @property
    def sim_latency(self) -> int:
        return self.result.sim_latency


@dataclass
class _TenantState:
    """One tenant's server plus scheduler-side bookkeeping."""

    server: BatchingServer
    slo: SloClass
    policy: SloPolicy
    #: this tenant's virtual clock: simulated units its partition has
    #: been busy. Advances only when *this* tenant is served.
    horizon: int = 0
    #: request_id -> horizon at submit, for deadline shedding.
    arrivals: Dict[int, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.arrivals is None:
            self.arrivals = {}


class TenantScheduler:
    """Serve several co-resident models, one partition each.

    Args:
        placement: validated-disjoint carving of the machine; one
            :class:`BatchingServer` is created per tenant on the
            tenant's partition view.
        slos: per-tenant SLO class (``STANDARD`` when omitted).
        policies: per-class admission policy table
            (:data:`DEFAULT_SLO_POLICIES` by default). A tenant's queue
            bound and dispatch deadline come from its class's policy.
        cache: plan cache *shared by every tenant* (a fresh one when
            omitted). Sharing is safe — and deliberately exercised —
            because partition fingerprints give each tenant distinct
            plan identity.
        server_kwargs: forwarded to every :class:`BatchingServer`
            (``allocator``, ``batch_window``, ``sim_mode``, ...).
    """

    def __init__(
        self,
        placement: TenantPlacement,
        slos: Optional[Mapping[str, "SloClass | str"]] = None,
        policies: Optional[Mapping[SloClass, SloPolicy]] = None,
        cache: Optional[PlanCache] = None,
        **server_kwargs: Any,
    ):
        self.placement = placement
        self.cache = cache if cache is not None else PlanCache()
        self.policies = dict(DEFAULT_SLO_POLICIES)
        if policies:
            self.policies.update(policies)
        self.metrics = MetricsRegistry()
        slos = slos or {}
        unknown = sorted(set(slos) - set(placement.names))
        if unknown:
            raise TenancyError(
                f"SLO classes given for unknown tenants {unknown}; "
                f"placement has {sorted(placement.names)}"
            )
        self._tenants: Dict[str, _TenantState] = {}
        for name, view in placement.items():
            slo = SloClass.from_name(slos.get(name, SloClass.STANDARD))
            policy = self.policies[slo]
            self._tenants[name] = _TenantState(
                server=BatchingServer(
                    config=view,
                    cache=self.cache,
                    max_queue=policy.max_queue_depth,
                    **server_kwargs,
                ),
                slo=slo,
                policy=policy,
            )

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def tenants(self) -> Tuple[str, ...]:
        return tuple(self._tenants)

    def server_for(self, tenant: str) -> BatchingServer:
        return self._state(tenant).server

    def slo_for(self, tenant: str) -> SloClass:
        return self._state(tenant).slo

    def horizon(self, tenant: str) -> int:
        """The tenant's virtual clock (simulated units served so far)."""
        return self._state(tenant).horizon

    def queue_depth(self, tenant: Optional[str] = None) -> int:
        if tenant is not None:
            return self._state(tenant).server.queue_depth
        return sum(s.server.queue_depth for s in self._tenants.values())

    def _state(self, tenant: str) -> _TenantState:
        try:
            return self._tenants[tenant]
        except KeyError:
            raise TenancyError(
                f"unknown tenant {tenant!r}; scheduler has "
                f"{sorted(self._tenants)}"
            ) from None

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(
        self, tenant: str, workload: str, iterations: int = 1
    ) -> InferenceRequest:
        """Admit one request for ``tenant`` or raise typed backpressure.

        Admission is bounded per tenant by the tenant's SLO-class policy
        — one tenant flooding its queue can never consume another
        tenant's admission budget, mirroring the hardware isolation.
        """
        state = self._state(tenant)
        depth = state.server.queue_depth
        if depth >= state.policy.max_queue_depth:
            self.metrics.counter("requests_rejected").inc()
            raise FleetAdmissionError(
                state.slo, depth, state.policy.max_queue_depth, workload
            )
        request = state.server.submit(workload, iterations)
        state.arrivals[request.request_id] = state.horizon
        self.metrics.counter("requests_accepted").inc()
        return request

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _next_tenant(self) -> Optional[str]:
        """Strictest SLO class first, then least-served, then name."""
        candidates = [
            (name, state)
            for name, state in self._tenants.items()
            if state.server.queue_depth > 0
        ]
        if not candidates:
            return None
        candidates.sort(
            key=lambda item: (_SLO_ORDER[item[1].slo], item[1].horizon, item[0])
        )
        return candidates[0][0]

    def _shed_expired(self, name: str, state: _TenantState) -> List[InferenceRequest]:
        deadline = state.policy.deadline_units
        if deadline is None:
            return []
        expired = state.server.remove_queued(
            lambda request: (
                state.horizon - state.arrivals.get(request.request_id, state.horizon)
            )
            > deadline
        )
        for request in expired:
            state.arrivals.pop(request.request_id, None)
            self.metrics.counter("requests_shed").inc()
            state.server.metrics.counter("requests_shed").inc()
        return expired

    def step(self) -> List[TenantResult]:
        """Serve one batch from the most urgent tenant; [] when idle.

        The chosen tenant first sheds deadline-expired requests (counted,
        never silently dropped), then serves one coalesced batch, and
        its *own* virtual clock advances by the batch completion time.
        Other tenants' clocks are untouched — disjoint partitions run
        concurrently.
        """
        while True:
            name = self._next_tenant()
            if name is None:
                return []
            state = self._tenants[name]
            self._shed_expired(name, state)
            results = state.server.step()
            if not results:
                # Everything queued for this tenant was expired; look for
                # the next most urgent tenant instead of spinning here.
                continue
            batch_completion = max(r.sim_latency for r in results)
            state.horizon += batch_completion
            for result in results:
                state.arrivals.pop(result.request.request_id, None)
            self.metrics.counter("batches_executed").inc()
            self.metrics.counter("requests_served").inc(len(results))
            return [TenantResult(tenant=name, result=r) for r in results]

    def drain(self) -> List[TenantResult]:
        """Serve until every tenant's queue is empty (shedding included)."""
        results: List[TenantResult] = []
        while self.queue_depth() > 0:
            served = self.step()
            if not served and self.queue_depth() == 0:
                break
            results.extend(served)
        return results

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def tenant_metrics(self, tenant: str) -> MetricsRegistry:
        """The tenant's own (un-namespaced) server registry."""
        return self._state(tenant).server.metrics

    def fleet_view(self) -> MetricsRegistry:
        """One merged registry: aggregate + per-tenant namespaced copies.

        Aggregate instruments keep their plain names (counters sum via
        :meth:`MetricsRegistry.merge`, exactly like the fleet router's
        view); each tenant's instruments additionally appear under
        ``tenant.<name>.<instrument>`` so dashboards can attribute load
        without losing the machine-wide totals.
        """
        merged = MetricsRegistry()
        merged.merge(self.metrics)
        for name, state in self._tenants.items():
            merged.merge(state.server.metrics)
            merged.merge(_namespaced(f"tenant.{name}", state.server.metrics))
        return merged

    def accounting(self) -> Dict[str, Any]:
        """Exact request conservation, per tenant and machine-wide.

        For every tenant: ``accepted == served + shed + queued``. The
        totals are the sums — nothing is lost between admission and
        disposition.
        """
        per_tenant: Dict[str, Dict[str, int]] = {}
        totals = {"accepted": 0, "served": 0, "shed": 0, "queued": 0}
        for name, state in self._tenants.items():
            snap = state.server.metrics.snapshot()["counters"]
            row = {
                "accepted": snap.get("requests_accepted", 0),
                "served": snap.get("requests_served", 0),
                "shed": snap.get("requests_shed", 0),
                "queued": state.server.queue_depth,
                "horizon_units": state.horizon,
                "slo": state.slo.value,
            }
            per_tenant[name] = row
            for key in totals:
                totals[key] += row[key]
        return {"tenants": per_tenant, "totals": totals}

    def describe(self) -> str:
        lines = [self.placement.describe()]
        for name, state in self._tenants.items():
            lines.append(
                f"  {name}: slo={state.slo.value} "
                f"queue={state.server.queue_depth} "
                f"horizon={state.horizon} units"
            )
        return "\n".join(lines)


def _namespaced(prefix: str, registry: MetricsRegistry) -> MetricsRegistry:
    """A copy of ``registry`` with every instrument renamed ``prefix.*``."""
    out = MetricsRegistry()
    with registry._lock:
        counters = list(registry.counters.values())
        gauges = list(registry.gauges.values())
        histograms = list(registry.histograms.values())
    for counter in counters:
        with counter._lock:
            value = counter.value
        out.counter(f"{prefix}.{counter.name}").inc(value)
    for gauge in gauges:
        with gauge._lock:
            value = gauge.value
        out.gauge(f"{prefix}.{gauge.name}").add(value)
    for histogram in histograms:
        out.histogram(
            f"{prefix}.{histogram.name}", histogram.reservoir_size
        ).merge(histogram)
    return out
