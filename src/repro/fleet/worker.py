"""One fleet shard: a batching server over a machine partition.

A :class:`FleetWorker` owns one :meth:`~repro.pim.config.PimConfig.partition`
of the fleet's physical machine and serves it with an ordinary
:class:`~repro.runtime.server.BatchingServer`. Two views of the partition
matter and they are deliberately different objects:

* ``partition`` — the *physical* view (which PE/vault ids this shard
  owns), kept for provenance, reporting and fleet bookkeeping;
* ``serving_config`` — the *logical* view (``partition.logical``), the
  shape the compile pipeline actually sees. Plans are keyed on the
  logical shape, so every shape-identical shard in the fleet shares plan
  identity — this is what makes the shared plan store a warm disk hit on
  worker B for a plan compiled on worker A (mirroring oneflow's
  ``TaskGraphMgr``: per-parallel-id placement over one logical lowering).

Fleet time is *virtual* and deterministic: the worker keeps a
``virtual_free_at`` horizon; a batch dispatched at ``max(now, free_at)``
completes per request at ``dispatch + sim_latency`` (the analytic
completion prefix the batching server already attributes), and the
horizon advances by the batch makespan. Queueing delay, service time and
therefore every percentile the bench reports are exact functions of the
trace — independent of host speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.graph.taskgraph import TaskGraph
from repro.pim.config import PimConfig
from repro.runtime.plan_cache import PlanCache
from repro.runtime.server import (
    BatchingServer,
    InferenceRequest,
    RequestResult,
)
from repro.sim.modes import SimMode

from repro.fleet.slo import SloClass, SloPolicy
from repro.fleet.store import SharedPlanStore


class WorkerDeadError(RuntimeError):
    """A request was routed to a shard that is no longer alive."""

    def __init__(self, worker_id: str):
        self.worker_id = worker_id
        super().__init__(f"worker {worker_id!r} is dead")


@dataclass(frozen=True)
class RequestMeta:
    """Fleet-level identity the shard keeps per queued request."""

    fleet_id: int
    slo: SloClass
    arrival_units: int


@dataclass(frozen=True)
class FleetResult:
    """One served request, with fleet-level (virtual-time) attribution."""

    fleet_id: int
    worker_id: str
    workload: str
    slo: SloClass
    iterations: int
    arrival_units: int
    dispatch_units: int
    completion_units: int
    #: end-to-end virtual latency: queueing delay + simulated service.
    latency_units: int
    #: the underlying single-server measurement this rides on.
    result: RequestResult


class FleetWorker:
    """One shard: partition ownership + a batching server + virtual time.

    Args:
        worker_id: stable shard name (the consistent-hash ring member).
        partition: the physical sub-machine this shard owns — typically
            one element of :meth:`PimConfig.split`. Serving happens on
            ``partition.logical``.
        store: optional :class:`SharedPlanStore`; when given, this
            shard's plan cache uses the store directory as its disk tier
            (compile once anywhere, warm everywhere).
        num_vaults: vault count when the partition carries no vault mask
            (masked partitions simulate ``len(vault_mask)`` vaults).
        cache_capacity: per-shard in-memory plan LRU bound.
        batch_window / max_queue / allocator / sim_mode / clock /
            graph_loader: forwarded to :class:`BatchingServer`.
    """

    def __init__(
        self,
        worker_id: str,
        partition: PimConfig,
        store: Optional[SharedPlanStore] = None,
        num_vaults: int = 32,
        cache_capacity: int = 32,
        batch_window: int = 8,
        max_queue: int = 4096,
        allocator: str = "dp",
        sim_mode: "SimMode | str" = SimMode.STEADY_STATE,
        clock: Optional[Callable[[], float]] = None,
        graph_loader: Optional[Callable[[str], TaskGraph]] = None,
    ):
        self.worker_id = worker_id
        self.partition = partition
        self.serving_config = partition.logical
        self.store = store
        self.num_vaults = (
            len(partition.vault_mask)
            if partition.vault_mask is not None
            else num_vaults
        )
        self.cache: PlanCache = (
            store.open_cache(capacity=cache_capacity)
            if store is not None
            else PlanCache(capacity=cache_capacity)
        )
        self.server = BatchingServer(
            self.serving_config,
            cache=self.cache,
            max_queue=max_queue,
            batch_window=batch_window,
            allocator=allocator,
            num_vaults=self.num_vaults,
            clock=clock,
            graph_loader=graph_loader,
            sim_mode=sim_mode,
        )
        self.alive = True
        #: virtual time at which this shard finishes its current work.
        self.virtual_free_at: int = 0
        self._meta: Dict[int, RequestMeta] = {}
        #: requests served / shed by this shard (exact, fleet-facing).
        self.served: int = 0
        self.shed: int = 0

    # -- admission -----------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self.server.queue_depth

    def submit(
        self,
        workload: str,
        iterations: int,
        slo: SloClass,
        arrival_units: int,
        fleet_id: int,
    ) -> InferenceRequest:
        """Enqueue one routed request (raises
        :class:`~repro.runtime.server.QueueFullError` on shard overload,
        :class:`WorkerDeadError` if routed to a dead shard)."""
        if not self.alive:
            raise WorkerDeadError(self.worker_id)
        request = self.server.submit(workload, iterations=iterations)
        self._meta[request.request_id] = RequestMeta(
            fleet_id=fleet_id, slo=slo, arrival_units=arrival_units
        )
        return request

    # -- serving -------------------------------------------------------
    def shed_expired(
        self, now_units: int, policies: Mapping[SloClass, SloPolicy]
    ) -> List[Tuple[InferenceRequest, RequestMeta]]:
        """Shed queued requests whose class deadline already passed.

        Deadline shedding happens at dispatch time, not admission time:
        a request ages while queued, and serving one that can no longer
        meet its deadline wastes shard capacity that on-time requests
        need. Shed requests are returned (never silently dropped) so the
        router can count them per class.
        """

        def expired(request: InferenceRequest) -> bool:
            meta = self._meta.get(request.request_id)
            if meta is None:  # pragma: no cover - defensive
                return False
            deadline = policies[meta.slo].deadline_units
            if deadline is None:
                return False
            return now_units - meta.arrival_units > deadline

        removed = self.server.remove_queued(expired)
        out = [(r, self._meta.pop(r.request_id)) for r in removed]
        self.shed += len(out)
        return out

    def pump(
        self, now_units: int, max_batches: Optional[int] = None
    ) -> List[FleetResult]:
        """Serve queued batches, attributing virtual completion times.

        Batches formed in one pump run back to back on the shard: the
        first dispatches at ``max(now, virtual_free_at)``, each next one
        at the previous completion horizon. Per request, completion is
        ``dispatch + sim_latency`` — the batching server's analytic
        completion prefix — so fleet latency is queueing delay plus
        simulated service, deterministic end to end.
        """
        results: List[FleetResult] = []
        batches = 0
        while self.server.queue_depth:
            if max_batches is not None and batches >= max_batches:
                break
            batch = self.server.step()
            if not batch:  # pragma: no cover - queue_depth guards this
                break
            batches += 1
            dispatch = max(now_units, self.virtual_free_at)
            # The last request's sim latency is the whole batch's
            # completion offset (FIFO attribution inside the batch).
            self.virtual_free_at = dispatch + batch[-1].sim_latency
            for request_result in batch:
                meta = self._meta.pop(request_result.request.request_id)
                completion = dispatch + request_result.sim_latency
                results.append(
                    FleetResult(
                        fleet_id=meta.fleet_id,
                        worker_id=self.worker_id,
                        workload=request_result.request.workload,
                        slo=meta.slo,
                        iterations=request_result.request.iterations,
                        arrival_units=meta.arrival_units,
                        dispatch_units=dispatch,
                        completion_units=completion,
                        latency_units=completion - meta.arrival_units,
                        result=request_result,
                    )
                )
        self.served += len(results)
        return results

    # -- failover ------------------------------------------------------
    def kill(self) -> None:
        """Mark the shard dead (simulated whole-worker failure)."""
        self.alive = False

    def drain_queued(self) -> List[Tuple[InferenceRequest, RequestMeta]]:
        """Evict every queued request (with its fleet identity) unserved.

        Used by the router after :meth:`kill`: the dead shard's queue is
        drained and re-routed to the survivors, so whole-worker death
        loses zero admitted requests.
        """
        removed = self.server.remove_queued()
        return [(r, self._meta.pop(r.request_id)) for r in removed]

    def evict_workload(
        self, workload: str
    ) -> List[Tuple[InferenceRequest, RequestMeta]]:
        """Evict only ``workload``'s queued requests, fleet identity intact.

        The live-rewire analogue of :meth:`drain_queued`: the router pulls
        one workload's requests off the shard (FIFO order, other
        workloads untouched) so they can be re-routed to the shard owning
        the *new* graph's plan digest.
        """
        removed = self.server.remove_queued(
            lambda request: request.workload == workload
        )
        return [(r, self._meta.pop(r.request_id)) for r in removed]

    # -- reporting -----------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Operator-facing shard summary (JSON-compatible)."""
        counters = self.server.metrics.snapshot()["counters"]
        return {
            "worker_id": self.worker_id,
            "alive": self.alive,
            "partition": self.partition.describe(),
            "pes": self.serving_config.num_pes,
            "vaults": self.num_vaults,
            "served": self.served,
            "shed": self.shed,
            "queue_depth": self.queue_depth,
            "virtual_free_at": self.virtual_free_at,
            "batches_executed": counters.get("batches_executed", 0),
            "plans_compiled_or_loaded": counters.get(
                "plans_compiled_or_loaded", 0
            ),
            "cache": self.cache.stats.as_dict(),
        }
