"""Sharded multi-worker serving tier over partitioned PIM machines.

The fleet lifts the single-machine serving stack (plan cache, inference
session, batching server) to N shards of one physical machine:

* :class:`HashRing` — consistent hashing on plan fingerprints, so every
  request lands on the shard whose cache is warm for its plan;
* :class:`SloClass` / :class:`SloPolicy` — typed per-class admission
  control and dispatch-deadline shedding;
* :class:`SharedPlanStore` — content-addressed disk artifact tier shared
  by every shard (compile once anywhere, warm everywhere), safe for
  concurrent writers;
* :class:`FleetWorker` — one shard: a machine partition, a batching
  server, a virtual-time horizon;
* :class:`FleetRouter` — routing, admission, pump/drain, and fleet-level
  failover with zero lost requests on whole-worker death;
* :class:`FleetLoadGenerator` / :func:`run_bench` — deterministic
  trace-driven bench behind ``python -m repro.fleet bench``.
"""

from repro.fleet.hashing import EmptyRingError, HashRing
from repro.fleet.loadgen import (
    DEFAULT_SLO_MIX,
    FleetLoadGenerator,
    TraceRequest,
    run_bench,
)
from repro.fleet.router import (
    FleetConfigurationError,
    FleetRewireResult,
    FleetRouter,
)
from repro.fleet.slo import (
    DEFAULT_SLO_POLICIES,
    FleetAdmissionError,
    SloClass,
    SloPolicy,
)
from repro.fleet.store import SharedPlanStore, StoreStats
from repro.fleet.tenancy import TenancyError, TenantResult, TenantScheduler
from repro.fleet.worker import (
    FleetResult,
    FleetWorker,
    RequestMeta,
    WorkerDeadError,
)

__all__ = [
    "DEFAULT_SLO_MIX",
    "DEFAULT_SLO_POLICIES",
    "EmptyRingError",
    "FleetAdmissionError",
    "FleetConfigurationError",
    "FleetLoadGenerator",
    "FleetResult",
    "FleetRewireResult",
    "FleetRouter",
    "FleetWorker",
    "HashRing",
    "RequestMeta",
    "SharedPlanStore",
    "SloClass",
    "SloPolicy",
    "StoreStats",
    "TenancyError",
    "TenantResult",
    "TenantScheduler",
    "TraceRequest",
    "WorkerDeadError",
    "run_bench",
]
