"""Fleet front-end: plan-affinity routing, SLO admission, failover.

The router is to the fleet what the batching server is to one machine: a
deterministic synchronous core. ``submit()`` admission-controls by SLO
class and routes by consistent hashing on the *plan fingerprint* — the
content-addressed identity of the plan the request needs — so every
request lands on the shard whose warm plan cache already holds (or will
hold, after one compile) its plan. ``pump()`` sheds deadline-expired
requests, serves queued batches shard by shard, and folds per-class
latency into the fleet metrics. ``kill_worker()`` is the PR 5 failover
story lifted to fleet granularity: the dead shard leaves the ring, its
queue is drained and re-routed to the ring survivors, and the accounting
proves zero admitted requests were lost.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from dataclasses import dataclass

from repro.cnn.workloads import load_workload
from repro.graph.taskgraph import TaskGraph
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.plan_cache import PlanKey
from repro.runtime.server import (
    REWIRE_CUT_POINTS,
    InferenceRequest,
    QueueFullError,
)

from repro.fleet.hashing import HashRing
from repro.fleet.slo import (
    DEFAULT_SLO_POLICIES,
    FleetAdmissionError,
    SloClass,
    SloPolicy,
)
from repro.fleet.worker import FleetResult, FleetWorker, RequestMeta


class FleetConfigurationError(ValueError):
    """Raised for inconsistent fleet wiring."""


@dataclass(frozen=True)
class FleetRewireResult:
    """Outcome of one fleet-wide live rewire.

    Accounting closes by construction: every request queued for the
    workload at the cut-point is either in ``drained`` (served before
    the swap, on the old plan) or counted in ``rerouted`` (re-submitted,
    fleet identity intact, to the shard owning the new digest) — nothing
    is dropped, and the fleet ``accounting()`` residual stays zero.
    """

    workload: str
    cut_point: str
    #: shard that owned the workload's old plan digest.
    old_worker: str
    #: shard the new graph's plan digest hashes to.
    new_worker: str
    #: requests served at the cut-point ("drain" only; a pump serves the
    #: affected shards' whole queues, so other workloads may appear too).
    drained: List[FleetResult]
    #: queued requests carried across the swap to the new owner.
    rerouted: int
    #: live sessions hot-swapped across the fleet.
    sessions_swapped: int
    #: True when any shard's swap needed an actual compile; False means
    #: every swapped shard found the new plan warm in its cache.
    recompiled: bool


class FleetRouter:
    """Deterministic fleet front-end over N :class:`FleetWorker` shards.

    Args:
        workers: the shards. Worker ids must be unique — they are the
            consistent-hash ring members.
        policies: per-:class:`SloClass` admission policy; classes absent
            from the mapping fall back to :data:`DEFAULT_SLO_POLICIES`.
        replicas: virtual nodes per shard on the ring.
        graph_loader: workload-name resolver used to fingerprint plans
            for routing (injectable for tests, like the server's).
    """

    def __init__(
        self,
        workers: Sequence[FleetWorker],
        policies: Optional[Mapping[SloClass, SloPolicy]] = None,
        replicas: int = 64,
        graph_loader: Optional[Callable[[str], TaskGraph]] = None,
    ):
        if not workers:
            raise FleetConfigurationError("a fleet needs at least one worker")
        ids = [w.worker_id for w in workers]
        if len(set(ids)) != len(ids):
            raise FleetConfigurationError(f"duplicate worker ids in {ids}")
        self.workers: Dict[str, FleetWorker] = {
            w.worker_id: w for w in workers
        }
        self.policies: Dict[SloClass, SloPolicy] = dict(DEFAULT_SLO_POLICIES)
        if policies:
            self.policies.update(policies)
        self.ring = HashRing(ids, replicas=replicas)
        self.graph_loader = (
            graph_loader if graph_loader is not None else load_workload
        )
        self.metrics = MetricsRegistry()
        #: virtual now, in simulated time units (monotone).
        self.now_units: int = 0
        self._fleet_ids = itertools.count(1)
        self._queued_by_class: Dict[SloClass, int] = {
            slo: 0 for slo in SloClass
        }
        self._affinity_keys: Dict[str, str] = {}
        #: live-rewire overrides: workload -> the graph whose plan digest
        #: the workload now routes on (set by :meth:`rewire`).
        self._graph_overrides: Dict[str, TaskGraph] = {}

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def affinity_key(self, workload: str) -> str:
        """The plan fingerprint this workload's requests hash on.

        This is the content-addressed :class:`PlanKey` digest of the plan
        the request needs — graph fingerprint, the fleet's *logical*
        shard shape, and the allocator knob — i.e. exactly the key the
        shard's plan cache will use. Cached per workload: routing a
        million requests fingerprints each distinct workload once.
        """
        key = self._affinity_keys.get(workload)
        if key is None:
            reference = next(iter(self.workers.values()))
            override = self._graph_overrides.get(workload)
            graph = (
                override if override is not None
                else self.graph_loader(workload)
            )
            key = PlanKey(
                graph_fingerprint=graph.fingerprint(),
                config_fingerprint=(
                    reference.serving_config.fingerprint()
                ),
                allocator=reference.server.allocator,
            ).digest
            self._affinity_keys[workload] = key
        return key

    def worker_for(self, workload: str) -> FleetWorker:
        """The shard currently owning this workload's plan key range."""
        return self.workers[self.ring.route(self.affinity_key(workload))]

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    def advance_to(self, units: int) -> None:
        """Move virtual now forward (never backward)."""
        self.now_units = max(self.now_units, int(units))

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Admitted-but-unserved requests across the whole fleet."""
        return sum(self._queued_by_class.values())

    def class_depth(self, slo: "SloClass | str") -> int:
        return self._queued_by_class[SloClass.from_name(slo)]

    def submit(
        self,
        workload: str,
        iterations: int = 1,
        slo: "SloClass | str" = SloClass.STANDARD,
    ) -> InferenceRequest:
        """Admit and route one request.

        Raises :class:`FleetAdmissionError` when the request's SLO class
        is at its fleet-wide depth bound, and propagates the shard's
        :class:`~repro.runtime.server.QueueFullError` when the owning
        shard itself is saturated — both are typed backpressure; the
        caller owns retry policy.
        """
        slo = SloClass.from_name(slo)
        policy = self.policies[slo]
        depth = self._queued_by_class[slo]
        if depth >= policy.max_queue_depth:
            self.metrics.counter("fleet.requests_rejected").inc()
            self.metrics.counter(
                f"fleet.requests_rejected.{slo.value}"
            ).inc()
            raise FleetAdmissionError(
                slo, depth, policy.max_queue_depth, workload
            )
        worker = self.worker_for(workload)
        request = worker.submit(
            workload,
            iterations=iterations,
            slo=slo,
            arrival_units=self.now_units,
            fleet_id=next(self._fleet_ids),
        )
        self._queued_by_class[slo] += 1
        self.metrics.counter("fleet.requests_admitted").inc()
        self.metrics.counter(f"fleet.requests_admitted.{slo.value}").inc()
        return request

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def _record_served(self, results: List[FleetResult]) -> None:
        for res in results:
            self._queued_by_class[res.slo] -= 1
            self.metrics.counter("fleet.requests_served").inc()
            self.metrics.histogram("fleet.latency_units").observe(
                res.latency_units
            )
            self.metrics.histogram(
                f"fleet.latency_units.{res.slo.value}"
            ).observe(res.latency_units)

    def _record_shed(self, shed: List[tuple]) -> None:
        for _request, meta in shed:
            self._queued_by_class[meta.slo] -= 1
            self.metrics.counter("fleet.requests_shed").inc()
            self.metrics.counter(
                f"fleet.requests_shed.{meta.slo.value}"
            ).inc()

    def pump(self, max_batches: Optional[int] = None) -> List[FleetResult]:
        """One scheduling round: shed expired, serve every live shard.

        A shard found dead with work still queued (killed outside
        :meth:`kill_worker`) is failed over here before serving, so the
        router never strands a queue.
        """
        results: List[FleetResult] = []
        for worker in list(self.workers.values()):
            if not worker.alive:
                if worker.worker_id in self.ring:
                    self._fail_over(worker)
                continue
            self._record_shed(
                worker.shed_expired(self.now_units, self.policies)
            )
            served = worker.pump(self.now_units, max_batches=max_batches)
            self._record_served(served)
            results.extend(served)
        return results

    def drain(self) -> List[FleetResult]:
        """Pump until no admitted request remains queued anywhere."""
        results: List[FleetResult] = []
        while self.queue_depth:
            round_results = self.pump()
            results.extend(round_results)
            if not round_results and self.queue_depth:
                # Every remaining request was shed (or there are no live
                # shards left) — pump() made no progress serving, and
                # another round would spin forever.
                if not any(w.alive for w in self.workers.values()):
                    raise FleetConfigurationError(
                        "no live workers remain but requests are queued"
                    )
                if not any(
                    w.queue_depth for w in self.workers.values() if w.alive
                ):
                    break
        return results

    # ------------------------------------------------------------------
    # fleet failover
    # ------------------------------------------------------------------
    def kill_worker(self, worker_id: str) -> int:
        """Kill one shard and fail its queue over to the survivors.

        Returns the number of re-routed requests. The dead shard leaves
        the ring first (so re-routing hashes onto survivors only), then
        its queue is drained and re-submitted *preserving each request's
        fleet identity* — original arrival time, SLO class and fleet id —
        so latency accounting keeps charging the full queueing delay and
        zero admitted requests are lost.
        """
        worker = self.workers[worker_id]
        worker.kill()
        return self._fail_over(worker)

    def _fail_over(self, worker: FleetWorker) -> int:
        if worker.worker_id in self.ring:
            self.ring.remove(worker.worker_id)
        self.metrics.counter("fleet.workers_lost").inc()
        evicted = worker.drain_queued()
        for request, meta in evicted:
            self._reroute(request, meta)
        self.metrics.counter("fleet.requests_rerouted").inc(len(evicted))
        return len(evicted)

    def _reroute(self, request: InferenceRequest, meta: RequestMeta) -> None:
        """Re-enqueue one already-admitted request on a surviving shard.

        Admission control is *not* re-applied — the request was already
        admitted once. A saturated survivor is pumped (which can only
        drain its queue) and the submit retried; with at least one live
        shard this terminates, because every pump makes room.
        """
        while True:
            target = self.workers[
                self.ring.route(self.affinity_key(request.workload))
            ]
            try:
                target.submit(
                    request.workload,
                    iterations=request.iterations,
                    slo=meta.slo,
                    arrival_units=meta.arrival_units,
                    fleet_id=meta.fleet_id,
                )
                return
            except QueueFullError:
                self._record_served(
                    target.pump(self.now_units)
                )

    # ------------------------------------------------------------------
    # live rewiring
    # ------------------------------------------------------------------
    def rewire(
        self,
        workload: str,
        new_graph: TaskGraph,
        cut_point: str = "drain",
    ) -> FleetRewireResult:
        """Hot-swap one workload's graph across the whole fleet.

        The single-server :meth:`~repro.runtime.server.BatchingServer.rewire`
        lifted to fleet granularity, with the extra obligation the fleet
        adds: *plan affinity moves with the graph*. After the swap the
        workload hashes on the new graph's plan digest, so it may land on
        a different shard than before.

        Cut-point semantics (queued requests, nothing dropped):

        * ``"drain"`` — every live shard holding queued requests for the
          workload is pumped first, so those requests are served on the
          *old* plan with exact fleet attribution before the swap lands.
        * ``"reroute"`` — queued requests are evicted with their fleet
          identity (arrival time, SLO class, fleet id) and re-submitted
          after the swap, landing on the shard that owns the *new*
          digest and serving on the *new* plan.

        Every live session for the workload is swapped through the
        recompile-through-cache path; shards that never served it get
        the override installed so their first session compiles the new
        graph. Repeat swaps to a previously served graph come back with
        ``recompiled=False`` — the plan store already holds the plan.
        """
        if cut_point not in REWIRE_CUT_POINTS:
            raise ValueError(
                f"cut_point must be one of {REWIRE_CUT_POINTS}, "
                f"got {cut_point!r}"
            )
        old_worker = self.worker_for(workload).worker_id
        drained: List[FleetResult] = []
        evicted: List[tuple] = []
        if cut_point == "drain":
            for worker in self.workers.values():
                if worker.alive and any(
                    request.workload == workload
                    for request in worker.server.queued_requests()
                ):
                    served = worker.pump(self.now_units)
                    self._record_served(served)
                    drained.extend(served)
        else:
            for worker in self.workers.values():
                if worker.alive:
                    evicted.extend(worker.evict_workload(workload))
        # Remap plan affinity: drop the cached digest and pin the
        # override, so the next affinity_key() hashes the new graph.
        self._graph_overrides[workload] = new_graph
        self._affinity_keys.pop(workload, None)
        sessions_swapped = 0
        recompiled = False
        for worker in self.workers.values():
            if not worker.alive:
                continue
            if workload in worker.server.sessions():
                result = worker.server.rewire(
                    workload, new_graph, cut_point="reroute"
                )
                recompiled = recompiled or result.recompiled
                sessions_swapped += 1
            else:
                worker.server.set_graph_override(workload, new_graph)
        new_worker = self.worker_for(workload).worker_id
        for request, meta in evicted:
            self._reroute(request, meta)
        if evicted:
            self.metrics.counter("fleet.requests_rerouted").inc(len(evicted))
        self.metrics.counter("fleet.graph_rewires").inc()
        return FleetRewireResult(
            workload=workload,
            cut_point=cut_point,
            old_worker=old_worker,
            new_worker=new_worker,
            drained=drained,
            rerouted=len(evicted),
            sessions_swapped=sessions_swapped,
            recompiled=recompiled,
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def fleet_metrics(self) -> MetricsRegistry:
        """One merged registry: router counters + every shard's metrics."""
        merged = MetricsRegistry()
        merged.merge(self.metrics)
        for worker in self.workers.values():
            merged.merge(worker.server.metrics)
        return merged

    def cache_summary(self) -> Dict[str, Any]:
        """Aggregate plan-cache accounting across every shard."""
        totals = {
            "hits": 0,
            "misses": 0,
            "disk_hits": 0,
            "disk_writes": 0,
            "evictions": 0,
            "compile_seconds": 0.0,
            "verify_failures": 0,
        }
        for worker in self.workers.values():
            stats = worker.cache.stats
            totals["hits"] += stats.hits
            totals["misses"] += stats.misses
            totals["disk_hits"] += stats.disk_hits
            totals["disk_writes"] += stats.disk_writes
            totals["evictions"] += stats.evictions
            totals["compile_seconds"] += stats.compile_seconds
            totals["verify_failures"] += stats.verify_failures
        lookups = totals["hits"] + totals["misses"]
        totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
        return totals

    def accounting(self) -> Dict[str, int]:
        """Exact request conservation: admitted = served + shed + queued.

        ``lost`` is the residual — it must be zero by construction (every
        admitted request is served, shed with attribution, or still
        queued), and the bench asserts it.
        """
        counters = self.metrics.snapshot()["counters"]
        admitted = counters.get("fleet.requests_admitted", 0)
        served = counters.get("fleet.requests_served", 0)
        shed = counters.get("fleet.requests_shed", 0)
        queued = self.queue_depth
        return {
            "admitted": admitted,
            "served": served,
            "shed": shed,
            "queued": queued,
            "rejected_at_admission": counters.get(
                "fleet.requests_rejected", 0
            ),
            "rerouted": counters.get("fleet.requests_rerouted", 0),
            "workers_lost": counters.get("fleet.workers_lost", 0),
            "lost": admitted - served - shed - queued,
        }
