"""Typed SLO classes and per-class admission policy.

A production serving tier never treats all traffic equally: interactive
requests need bounded queueing delay, batch traffic tolerates deep queues
in exchange for throughput. The fleet router admission-controls *by
class* — each :class:`SloClass` carries its own queue-depth bound and an
optional dispatch deadline — so a flood of batch work can never push an
interactive request into an unbounded queue, and a request that already
blew its deadline while queued is *shed* (counted, surfaced, never
silently dropped) instead of wasting shard time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional


class SloClass(enum.Enum):
    """Service classes, strictest first."""

    INTERACTIVE = "interactive"
    STANDARD = "standard"
    BATCH = "batch"

    @classmethod
    def from_name(cls, name: "str | SloClass") -> "SloClass":
        if isinstance(name, cls):
            return name
        try:
            return cls(str(name).lower())
        except ValueError:
            known = ", ".join(c.value for c in cls)
            raise ValueError(
                f"unknown SLO class {name!r}; known: {known}"
            ) from None


@dataclass(frozen=True)
class SloPolicy:
    """Admission policy for one SLO class.

    Attributes:
        max_queue_depth: fleet-wide bound on requests of this class that
            may be queued at once; beyond it :class:`FleetAdmissionError`
            is raised (typed backpressure, exactly like the single-server
            :class:`~repro.runtime.server.QueueFullError`).
        deadline_units: maximum *queueing* age in simulated time units a
            request of this class may reach before a shard dispatches it;
            older requests are shed at dispatch time. ``None`` disables
            shedding for the class.
    """

    max_queue_depth: int
    deadline_units: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.deadline_units is not None and self.deadline_units < 1:
            raise ValueError("deadline_units must be >= 1 (or None)")


#: Defaults sized for the bench fleet: interactive queues stay shallow,
#: batch queues absorb bursts. No class sheds by default — deadlines are
#: an opt-in policy choice (the bench CLI exposes them per class).
DEFAULT_SLO_POLICIES: Dict[SloClass, SloPolicy] = {
    SloClass.INTERACTIVE: SloPolicy(max_queue_depth=4096),
    SloClass.STANDARD: SloPolicy(max_queue_depth=8192),
    SloClass.BATCH: SloPolicy(max_queue_depth=32768),
}


class FleetAdmissionError(RuntimeError):
    """Typed per-class backpressure: this SLO class's queue is full.

    Carries the class and its bound so a client can back off per class
    (batch overload must not trigger interactive retries).
    """

    def __init__(self, slo: SloClass, depth: int, limit: int, workload: str):
        self.slo = slo
        self.depth = depth
        self.limit = limit
        self.workload = workload
        super().__init__(
            f"{slo.value} admission queue full ({depth}/{limit}); "
            f"rejecting request for {workload!r}"
        )
