"""Simulation modes for the schedule executor.

``FULL_UNROLL`` is the oracle: every instance of every iteration is
simulated event by event. ``STEADY_STATE`` exploits the periodicity the
paper proves (Sections 2.2/3.2): after the ``R_max * p`` prologue the
loop kernel repeats identically every period, so once two consecutive
round-boundary machine-state fingerprints match, the remaining rounds are
fast-forwarded in O(1) by replaying the converged per-round stats delta
and splicing timestamps. The two modes are aggregate-identical --
``repro.verify``'s ``differential_simulate`` check holds them to it.

``COLUMNAR`` and ``COLUMNAR_STEADY`` are the array-backed twins of the
two object modes (:mod:`repro.sim.columnar`): same event-order semantics
via the same ``(time, priority, content key, seq)`` tie-break, executed
on flat per-PE/vault/port timeline arrays and precomputed static tables
instead of the object graph. ``COLUMNAR`` matches ``FULL_UNROLL``
signature-for-signature; ``COLUMNAR_STEADY`` adds the same convergence
detection and O(1) fast-forward as ``STEADY_STATE``.
"""

from __future__ import annotations

import enum


class SimMode(enum.Enum):
    """How the executor advances through the ``N`` logical iterations."""

    #: Simulate every instance (the oracle; O(V*N) events).
    FULL_UNROLL = "full"
    #: Detect steady state via machine fingerprints, fast-forward the rest.
    STEADY_STATE = "steady"
    #: Array-backed full fidelity: every instance, columnar machine state.
    COLUMNAR = "columnar"
    #: Array-backed steady state: columnar rounds + convergence splice.
    COLUMNAR_STEADY = "columnar_steady"

    @property
    def is_columnar(self) -> bool:
        """Whether this mode runs on the array engine."""
        return self in (SimMode.COLUMNAR, SimMode.COLUMNAR_STEADY)

    @property
    def detects_steady_state(self) -> bool:
        """Whether this mode fingerprints boundaries and fast-forwards."""
        return self in (SimMode.STEADY_STATE, SimMode.COLUMNAR_STEADY)

    @classmethod
    def from_name(cls, name: "str | SimMode") -> "SimMode":
        """Parse a CLI-style mode name (``full``/``steady``), leniently."""
        if isinstance(name, cls):
            return name
        normalized = str(name).strip().lower().replace("-", "_")
        aliases = {
            "full": cls.FULL_UNROLL,
            "full_unroll": cls.FULL_UNROLL,
            "unroll": cls.FULL_UNROLL,
            "steady": cls.STEADY_STATE,
            "steady_state": cls.STEADY_STATE,
            "fast": cls.STEADY_STATE,
            "columnar": cls.COLUMNAR,
            "array": cls.COLUMNAR,
            "columnar_full": cls.COLUMNAR,
            "columnar_steady": cls.COLUMNAR_STEADY,
            "array_steady": cls.COLUMNAR_STEADY,
        }
        try:
            return aliases[normalized]
        except KeyError:
            known = ", ".join(sorted(aliases))
            raise ValueError(
                f"unknown sim mode {name!r}; known: {known}"
            ) from None
