"""Simulation modes for the schedule executor.

``FULL_UNROLL`` is the oracle: every instance of every iteration is
simulated event by event. ``STEADY_STATE`` exploits the periodicity the
paper proves (Sections 2.2/3.2): after the ``R_max * p`` prologue the
loop kernel repeats identically every period, so once two consecutive
round-boundary machine-state fingerprints match, the remaining rounds are
fast-forwarded in O(1) by replaying the converged per-round stats delta
and splicing timestamps. The two modes are aggregate-identical --
``repro.verify``'s ``differential_simulate`` check holds them to it.
"""

from __future__ import annotations

import enum


class SimMode(enum.Enum):
    """How the executor advances through the ``N`` logical iterations."""

    #: Simulate every instance (the oracle; O(V*N) events).
    FULL_UNROLL = "full"
    #: Detect steady state via machine fingerprints, fast-forward the rest.
    STEADY_STATE = "steady"

    @classmethod
    def from_name(cls, name: "str | SimMode") -> "SimMode":
        """Parse a CLI-style mode name (``full``/``steady``), leniently."""
        if isinstance(name, cls):
            return name
        normalized = str(name).strip().lower().replace("-", "_")
        aliases = {
            "full": cls.FULL_UNROLL,
            "full_unroll": cls.FULL_UNROLL,
            "unroll": cls.FULL_UNROLL,
            "steady": cls.STEADY_STATE,
            "steady_state": cls.STEADY_STATE,
            "fast": cls.STEADY_STATE,
        }
        try:
            return aliases[normalized]
        except KeyError:
            known = ", ".join(sorted(aliases))
            raise ValueError(
                f"unknown sim mode {name!r}; known: {known}"
            ) from None
