"""Array-backed executor engine: columnar machine state, same semantics.

The object engine (:mod:`repro.sim.executor`) walks an object graph per
event: ``EventTag`` dataclasses, callback closures, ``ProcessingEngine``
/ ``EdramVault`` / ``CacheModel`` method calls and per-event dict-backed
schedule lookups. This module executes the *same* discrete-event
semantics on flat data:

* the machine is a set of **timeline arrays** -- per-PE busy clocks,
  per-vault service clocks, crossbar port clocks -- advanced in place;
* all static facts are **precomputed tables** built once per run from
  the schedule (per-op: PE, execution time, nominal-start offset,
  in-degree, ALU cost, in-edge keys; per-edge: placement, slots,
  transfer latencies, home vault, crossbar ports), so the hot loop does
  list indexing only;
* events are **plain tuples** ``(time, priority, iteration, op, e0, e1,
  seq, size)`` on a ``heapq`` -- ordered exactly like the object
  engine's ``(time, priority, content key, seq)`` tie-break, because the
  content key *is* ``(iteration, op) + edge`` and every key is unique,
  so the sequence number never decides between distinct events;
* per-round work is **vectorized** where it is data-parallel: nominal
  starts of a materialized round are one array add, boundary canonical
  forms and the fast-forward splice are array clamps/shifts.

Bit-identity contract: for every schedule, fault model and sink,
``SimMode.COLUMNAR`` produces the same :class:`ExecutionTrace` aggregate
signature (and the same per-round boundary counters) as
``SimMode.FULL_UNROLL``, and ``SimMode.COLUMNAR_STEADY`` the same as
``SimMode.STEADY_STATE`` -- including identical convergence rounds,
periods and fingerprint digests, because the canonical form mirrors
:meth:`repro.sim.state.MachineState.canonical` field for field.
``repro.verify --sim`` and the per-round property battery enforce it.
"""

from __future__ import annotations

import hashlib
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from repro.core.paraconv import ParaConvResult
from repro.core.profit import require_numpy_floor
from repro.pim.config import PimConfig
from repro.pim.faults import FAULT_UNIT_PE, FAULT_UNIT_VAULT, FaultModel
from repro.pim.stats import TrafficStats
from repro.sim.engine import SimulationError
from repro.sim.executor import (
    _PRIO_ARRIVE,
    _PRIO_PRODUCE,
    _PRIO_START,
    _BoundarySnapshot,
    ExecutionTrace,
    PeFaultError,
    candidate_period,
)
from repro.sim.modes import SimMode
from repro.sim.sinks import FastForwardNotice, NullSink, TraceSink
from repro.sim.trace import InstanceRecord, TransferKind, TransferRecord

np = require_numpy_floor(__name__)

__all__ = ["ColumnarRun"]

#: pFIFO depth of the modelled PE (see ``repro.pim.pe.ProcessingEngine``).
_FIFO_DEPTH = 16

#: heap priority -> event kind name (only for canonical forms / debug).
_KIND_OF_PRIO = {
    _PRIO_ARRIVE: "arrive", _PRIO_START: "start", _PRIO_PRODUCE: "produce",
}


class ColumnarRun:
    """One array-engine invocation: static tables + timelines + loop.

    Drop-in sibling of ``repro.sim.executor._ExecutorRun`` -- same
    constructor shape, same :meth:`execute` contract -- selected by
    :class:`~repro.sim.executor.ScheduleExecutor` for the columnar
    :class:`~repro.sim.modes.SimMode` members.
    """

    def __init__(
        self,
        config: PimConfig,
        num_vaults: int,
        result: ParaConvResult,
        iterations: int,
        mode: SimMode,
        sink: TraceSink,
        max_period: int = 8,
        confirm_budget: int = 8,
        fault_model: Optional[FaultModel] = None,
        round_probe=None,
    ):
        self.config = config
        self.result = result
        self.iterations = iterations
        self.mode = mode
        self.fault_model = (
            fault_model
            if fault_model is not None and not fault_model.is_trivial
            else None
        )
        self._failed_pes: frozenset = frozenset()
        self._failed_vaults: frozenset = frozenset()
        self._current_round = 0
        self.max_period = max_period
        self.confirm_budget = confirm_budget
        self._round_probe = round_probe

        schedule = result.schedule
        graph = result.graph
        kernel = schedule.kernel
        self.period = schedule.period
        self.r_max = schedule.max_retiming
        width = result.group_width
        self.num_vaults = num_vaults
        self.graph = graph

        # ---- static per-op tables (index = op_id) ---------------------
        ops = list(graph.operations())
        size = max(op.op_id for op in ops) + 1 if ops else 0
        self._op_order: List[int] = [op.op_id for op in ops]
        self._pe_of: List[int] = [0] * size
        self._exec: List[int] = [0] * size
        self._alu: List[int] = [0] * size
        self._in_deg: List[int] = [0] * size
        self._in_keys: List[List[Tuple[int, int]]] = [[] for _ in range(size)]
        static_off = [0] * size
        for op in ops:
            op_id = op.op_id
            self._pe_of[op_id] = kernel.pe_of(op_id)
            self._exec[op_id] = op.execution_time
            self._alu[op_id] = max(op.work, op.execution_time)
            self._in_deg[op_id] = graph.in_degree(op_id)
            self._in_keys[op_id] = [e.key for e in graph.in_edges(op_id)]
            # nominal(op, it) = (it - 1) * p + static_off[op]: the whole
            # round's nominal starts become one vectorized array add.
            static_off[op_id] = (
                self.r_max - schedule.retiming[op_id]
            ) * self.period + kernel.start(op_id)
        self._static_off = np.asarray(static_off, dtype=np.int64)

        # ---- static per-edge tables (keyed off the producing op) ------
        # Vault service granularity mirrors MemorySystem.__post_init__.
        effective = max(
            1, config.cache_bytes_per_unit // config.edram_latency_factor
        )
        from repro.pim.memory import Placement

        self._edge_size: Dict[Tuple[int, int], int] = {}
        #: out_recs[op] = [(consumer, e0, e1, size, is_cache, slots,
        #:   cache_units, edram_units, service, vault, port_busy,
        #:   consumer_pe), ...] in graph.out_edges() order.
        self._out_recs: List[List[tuple]] = [[] for _ in range(size)]
        for op in ops:
            for edge in graph.out_edges(op.op_id):
                e0, e1 = edge.key
                size_bytes = edge.size_bytes
                self._edge_size[edge.key] = size_bytes
                self._out_recs[op.op_id].append((
                    edge.consumer,
                    e0,
                    e1,
                    size_bytes,
                    schedule.placements[edge.key] is Placement.CACHE,
                    config.slots_required(size_bytes),
                    config.cache_transfer_units(size_bytes),
                    config.edram_transfer_units(size_bytes),
                    max(1, size_bytes // effective),
                    hash(edge.key) % num_vaults,
                    config.cache_transfer_units(size_bytes),
                    kernel.pe_of(edge.consumer),
                ))

        # ---- timeline arrays + dynamic state --------------------------
        self._pe_free: List[int] = [0] * width
        self._fifo: List[List[tuple]] = [[] for _ in range(width)]
        self._vault_free: List[int] = [0] * num_vaults
        self._xin: List[int] = [0] * width
        self._xout: List[int] = [0] * num_vaults
        # Per-group cache share, as the allocator assumed (the object
        # engine divides MemorySystem's capacity the same way).
        self._cache_cap = max(
            config.total_cache_slots // result.num_groups, 0
        )
        self._cache_used = 0
        self._cache_live: Dict[Tuple[int, int, int], int] = {}
        self._pending: Dict[Tuple[int, int], int] = {}
        self._max_avail: Dict[Tuple[int, int], int] = {}
        self._nominal: Dict[Tuple[int, int], int] = {}
        self._heap: List[tuple] = []
        self._seq = 0
        self._now = 0
        self._processed = 0
        self._events_skipped = 0
        self._mem_stats = TrafficStats()
        self._next_iteration = 1
        self._max_finish = 0
        self._converged = False

        self.trace = ExecutionTrace(
            config=config,
            iterations=iterations,
            analytic_makespan=self.r_max * self.period
            + iterations * self.period,
            realized_makespan=0,
            sink=sink,
            sim_mode=mode,
        )
        #: records are skipped entirely for a NullSink -- the aggregates
        #: on the trace are exact either way.
        self._emit = not isinstance(sink, NullSink)

    # ------------------------------------------------------------------
    # event handlers (tuple-dispatched; no tags, no closures)
    # ------------------------------------------------------------------
    def _materialize(self, iteration: int) -> None:
        """One logical iteration's bookkeeping; nominal row vectorized."""
        offs = (self._static_off + (iteration - 1) * self.period).tolist()
        heap = self._heap
        nominal = self._nominal
        pending = self._pending
        max_avail = self._max_avail
        in_deg = self._in_deg
        for op_id in self._op_order:
            key = (op_id, iteration)
            nominal[key] = offs[op_id]
            degree = in_deg[op_id]
            if degree == 0:
                heappush(heap, (
                    offs[op_id], _PRIO_START, iteration, op_id, -1, -1,
                    self._seq, 0,
                ))
                self._seq += 1
            else:
                pending[key] = degree
                max_avail[key] = 0

    def _arrive(self, iteration, op_id, e0, e1, size) -> None:
        key = (op_id, iteration)
        now = self._now
        max_avail = self._max_avail
        if now > max_avail[key]:
            max_avail[key] = now
        pending = self._pending
        pending[key] -= 1
        fifo = self._fifo[self._pe_of[op_id]]
        if len(fifo) < _FIFO_DEPTH:
            fifo.append(((e0, e1), size))
            self.trace.stats.fifo_pushes += 1
        if pending[key] == 0:
            start_at = self._nominal[key]
            avail = max_avail[key]
            if avail > start_at:
                start_at = avail  # avail already >= now
            del pending[key]
            del max_avail[key]
            heappush(self._heap, (
                start_at, _PRIO_START, iteration, op_id, -1, -1,
                self._seq, 0,
            ))
            self._seq += 1

    def _start(self, iteration, op_id) -> None:
        pe_id = self._pe_of[op_id]
        if pe_id in self._failed_pes:
            self._raise_fault(FAULT_UNIT_PE, pe_id)
        trace = self.trace
        in_keys = self._in_keys[op_id]
        fifo = self._fifo[pe_id]
        for edge_key in in_keys:  # pop_matching: oldest entry per edge
            for index, entry in enumerate(fifo):
                if entry[0] == edge_key:
                    del fifo[index]
                    break
        now = self._now
        start = self._pe_free[pe_id]
        if now > start:
            start = now
        duration = self._exec[op_id]
        finish = start + duration
        self._pe_free[pe_id] = finish
        nominal = self._nominal.pop((op_id, iteration))
        if self._emit:
            trace.sink.record_instance(InstanceRecord(
                op_id=op_id, iteration=iteration, pe=pe_id,
                nominal_start=nominal, start=start, finish=finish,
            ))
        trace.num_instances += 1
        trace.busy_units += duration
        lateness = start - nominal
        trace.lateness_total += lateness
        if lateness > trace.lateness_max:
            trace.lateness_max = lateness
        trace.pes_used.add(pe_id)
        trace.stats.alu_ops += self._alu[op_id]
        if finish > self._max_finish:
            self._max_finish = finish
        cache_live = self._cache_live
        for e0, e1 in in_keys:  # consume: free cache slots of in-edges
            slots = cache_live.pop((e0, e1, iteration), None)
            if slots is not None:
                self._cache_used -= slots
        heappush(self._heap, (
            finish, _PRIO_PRODUCE, iteration, op_id, -1, -1, self._seq, 0,
        ))
        self._seq += 1

    def _produce(self, iteration, op_id) -> None:
        trace = self.trace
        mem = self._mem_stats
        finish = self._now
        for (consumer, e0, e1, size, is_cache, slots, cache_units,
             edram_units, service, vault, port_busy,
             consumer_pe) in self._out_recs[op_id]:
            if is_cache:
                used = self._cache_used + slots
                if used <= self._cache_cap:
                    self._cache_live[(e0, e1, iteration)] = slots
                    self._cache_used = used
                    if used > trace.cache_peak_slots:
                        trace.cache_peak_slots = used
                    mem.cache_accesses += 1
                    mem.cache_bytes += size
                    arrival = finish + cache_units
                    if self._emit:
                        trace.sink.record_transfer(TransferRecord(
                            (e0, e1), iteration, TransferKind.CACHE,
                            size, finish, arrival,
                        ))
                    trace.num_transfers += 1
                    heappush(self._heap, (
                        arrival, _PRIO_ARRIVE, iteration, consumer,
                        e0, e1, self._seq, size,
                    ))
                    self._seq += 1
                    continue
                trace.cache_spills += 1  # transient overflow: spill
            if vault in self._failed_vaults:
                self._raise_fault(FAULT_UNIT_VAULT, vault)
            # Crossbar: consumer-side fetch holds both ports for the
            # bandwidth share; vault queues the access; the remaining
            # wire latency rides on top (executor._edram_roundtrip).
            issued = finish
            if self._xin[consumer_pe] > issued:
                issued = self._xin[consumer_pe]
            if self._xout[vault] > issued:
                issued = self._xout[vault]
            port_finish = issued + port_busy
            self._xin[consumer_pe] = port_finish
            self._xout[vault] = port_finish
            read_start = issued
            if self._vault_free[vault] > read_start:
                read_start = self._vault_free[vault]
            serviced = read_start + service
            self._vault_free[vault] = serviced
            extra = edram_units - service
            arrival = serviced + (extra if extra > 0 else 0)
            mem.edram_accesses += 1
            mem.edram_bytes += size
            if self._emit:
                trace.sink.record_transfer(TransferRecord(
                    (e0, e1), iteration, TransferKind.EDRAM,
                    size, finish, arrival,
                ))
            trace.num_transfers += 1
            heappush(self._heap, (
                arrival, _PRIO_ARRIVE, iteration, consumer, e0, e1,
                self._seq, size,
            ))
            self._seq += 1

    def _run_until(self, until: int) -> None:
        heap = self._heap
        while heap and heap[0][0] <= until:
            time, prio, iteration, op_id, e0, e1, _seq, size = heappop(heap)
            self._now = time
            self._processed += 1
            if prio == _PRIO_START:
                self._start(iteration, op_id)
            elif prio == _PRIO_ARRIVE:
                self._arrive(iteration, op_id, e0, e1, size)
            else:
                self._produce(iteration, op_id)

    # ------------------------------------------------------------------
    # faults
    # ------------------------------------------------------------------
    def _raise_fault(self, unit: str, unit_id: int) -> None:
        assert self.fault_model is not None
        raise PeFaultError(
            unit,
            unit_id,
            round=self._current_round,
            time=self._now,
            fault_iteration=self.fault_model.fault_iteration_of(unit, unit_id),
        )

    def _update_fault_mask(self, boundary_round: int) -> bool:
        assert self.fault_model is not None
        pes, vaults = self.fault_model.mask_at(boundary_round)
        changed = pes != self._failed_pes or vaults != self._failed_vaults
        self._failed_pes = pes
        self._failed_vaults = vaults
        return changed

    # ------------------------------------------------------------------
    # steady-state machinery (columnar twin of the object engine's)
    # ------------------------------------------------------------------
    def _snapshot(self) -> _BoundarySnapshot:
        trace = self.trace
        return _BoundarySnapshot(
            trace_stats=tuple(trace.stats.as_dict().values()),
            memory_stats=tuple(self._mem_stats.as_dict().values()),
            cache_spills=trace.cache_spills,
            num_instances=trace.num_instances,
            num_transfers=trace.num_transfers,
            busy_units=trace.busy_units,
            lateness_total=trace.lateness_total,
            events_processed=self._processed,
        )

    def _canonical(self, reference_time: int, reference_iteration: int):
        """Boundary-relative state; mirrors ``MachineState.canonical``.

        Clamps are array ops over the timelines; the resulting tuple is
        structurally identical to the object engine's (same fields, same
        clamping, same sort keys), so the two engines converge at the
        same boundary with the same fingerprint digest.
        """
        t = reference_time
        r = reference_iteration
        pe_clamped = np.maximum(
            np.asarray(self._pe_free, dtype=np.int64) - t, 0
        ).tolist()
        pe_state = tuple(
            (free, tuple(fifo))
            for free, fifo in zip(pe_clamped, self._fifo)
        )
        vault_state = tuple(np.maximum(
            np.asarray(self._vault_free, dtype=np.int64) - t, 0
        ).tolist())
        crossbar_state = (
            tuple(np.maximum(
                np.asarray(self._xin, dtype=np.int64) - t, 0
            ).tolist()),
            tuple(np.maximum(
                np.asarray(self._xout, dtype=np.int64) - t, 0
            ).tolist()),
        )
        cache_state = tuple(sorted(
            ((e0, e1), iteration - r, slots)
            for (e0, e1, iteration), slots in self._cache_live.items()
        ))
        pending_state = tuple(sorted(
            (op_id, iteration - r, count,
             max(self._max_avail[(op_id, iteration)] - t, 0))
            for (op_id, iteration), count in self._pending.items()
        ))
        nominal_state = tuple(sorted(
            (op_id, iteration - r, start - t)
            for (op_id, iteration), start in self._nominal.items()
        ))
        event_state = tuple(
            (
                time - t,
                prio,
                _KIND_OF_PRIO[prio],
                op_id,
                iteration - r,
                (e0, e1),
                size,
            )
            for (time, prio, iteration, op_id, e0, e1, _seq, size)
            in sorted(self._heap)
        )
        return (
            pe_state,
            vault_state,
            crossbar_state,
            self._cache_used,
            cache_state,
            pending_state,
            nominal_state,
            event_state,
        )

    def _fingerprint(self, reference_time: int, reference_iteration: int) -> str:
        canon = self._canonical(reference_time, reference_iteration)
        return hashlib.sha256(repr(canon).encode("utf-8")).hexdigest()[:16]

    def _fast_forward(
        self,
        boundary_round: int,
        repetitions: int,
        period_rounds: int,
        current: _BoundarySnapshot,
        previous: _BoundarySnapshot,
    ) -> None:
        """Replay converged cycles: counter replay + array splice."""
        trace = self.trace
        rounds = repetitions * period_rounds
        time_shift = rounds * self.period

        # 1. Counter replay: the converged per-cycle delta, M times.
        for index, name in enumerate(list(trace.stats.as_dict())):
            delta = current.trace_stats[index] - previous.trace_stats[index]
            setattr(trace.stats, name,
                    getattr(trace.stats, name) + repetitions * delta)
        for index, name in enumerate(list(self._mem_stats.as_dict())):
            delta = current.memory_stats[index] - previous.memory_stats[index]
            setattr(self._mem_stats, name,
                    getattr(self._mem_stats, name) + repetitions * delta)
        instances_skipped = repetitions * (
            current.num_instances - previous.num_instances
        )
        transfers_skipped = repetitions * (
            current.num_transfers - previous.num_transfers
        )
        trace.cache_spills += repetitions * (
            current.cache_spills - previous.cache_spills
        )
        trace.num_instances += instances_skipped
        trace.num_transfers += transfers_skipped
        trace.busy_units += repetitions * (
            current.busy_units - previous.busy_units
        )
        trace.lateness_total += repetitions * (
            current.lateness_total - previous.lateness_total
        )
        self._events_skipped += repetitions * (
            current.events_processed - previous.events_processed
        )
        self._max_finish += time_shift

        # 2. Timestamp splice: one array add per timeline; iteration
        # labels of live bookkeeping rebuilt with the round shift.
        self._pe_free = (
            np.asarray(self._pe_free, dtype=np.int64) + time_shift
        ).tolist()
        self._vault_free = (
            np.asarray(self._vault_free, dtype=np.int64) + time_shift
        ).tolist()
        self._xin = (
            np.asarray(self._xin, dtype=np.int64) + time_shift
        ).tolist()
        self._xout = (
            np.asarray(self._xout, dtype=np.int64) + time_shift
        ).tolist()
        self._cache_live = {
            (e0, e1, iteration + rounds): slots
            for (e0, e1, iteration), slots in self._cache_live.items()
        }
        self._pending = {
            (op_id, iteration + rounds): count
            for (op_id, iteration), count in self._pending.items()
        }
        self._max_avail = {
            (op_id, iteration + rounds): when + time_shift
            for (op_id, iteration), when in self._max_avail.items()
        }
        self._nominal = {
            (op_id, iteration + rounds): start + time_shift
            for (op_id, iteration), start in self._nominal.items()
        }
        # In-flight events: shifted in processing order with fresh seqs
        # (a sorted list already satisfies the heap invariant).
        shifted: List[tuple] = []
        seq = 0
        for (time, prio, iteration, op_id, e0, e1, _seq, size) in sorted(
            self._heap
        ):
            shifted.append((
                time + time_shift, prio, iteration + rounds, op_id,
                e0, e1, seq, size,
            ))
            seq += 1
        self._heap = shifted
        self._seq = seq
        self._next_iteration += rounds

        # 3. Bookkeeping for observability and the sink.
        trace.converged_round = boundary_round
        trace.converged_period = period_rounds
        trace.rounds_fast_forwarded += rounds
        trace.steady_fingerprint = self._fingerprint(
            boundary_round * self.period, boundary_round
        )
        trace.sink.on_fast_forward(FastForwardNotice(
            rounds=rounds,
            time_shift=time_shift,
            iteration_shift=rounds,
            instances_skipped=instances_skipped,
            transfers_skipped=transfers_skipped,
        ))

    # ------------------------------------------------------------------
    # main loop (structurally identical to _ExecutorRun.execute)
    # ------------------------------------------------------------------
    def execute(self) -> ExecutionTrace:
        trace = self.trace
        n = self.iterations
        boundary_round = 0
        detecting = (
            self.mode is SimMode.COLUMNAR_STEADY and n > self.r_max + 3
        )
        snapshots: Dict[int, _BoundarySnapshot] = {}
        canonicals: Dict[int, tuple] = {}
        confirm_q: Optional[int] = None
        confirm_from = 0
        failed_confirms = 0

        while self._heap or self._next_iteration <= n:
            boundary_round += 1
            self._current_round = boundary_round
            if self.fault_model is not None and self._update_fault_mask(
                boundary_round
            ):
                snapshots.clear()
                canonicals.clear()
                confirm_q = None
                self._converged = False
            if self._next_iteration <= min(boundary_round, n):
                self._materialize(self._next_iteration)
                self._next_iteration += 1
            boundary_time = boundary_round * self.period
            self._run_until(boundary_time - 1)
            trace.rounds_simulated += 1
            if self._round_probe is not None:
                self._round_probe(boundary_round, self._snapshot())
            if not detecting or self._converged or boundary_round > n:
                continue

            # Phase 0 (every boundary, cheap): counter snapshot.
            snapshots[boundary_round] = self._snapshot()
            window = 2 * self.max_period + 2
            snapshots.pop(boundary_round - window, None)

            if confirm_q is not None:
                # Phase 2: exact confirmation of the candidate period.
                canonical = self._canonical(boundary_time, boundary_round)
                canonicals[boundary_round] = canonical
                reference = canonicals.get(boundary_round - confirm_q)
                if reference is not None and canonical == reference:
                    self._converged = True
                    horizon = n
                    if self.fault_model is not None:
                        next_fault = self.fault_model.next_event_after(
                            boundary_round
                        )
                        if next_fault is not None:
                            horizon = min(horizon, next_fault - 1)
                    repetitions = max(
                        0, (horizon - boundary_round) // confirm_q
                    )
                    if repetitions > 0:
                        self._fast_forward(
                            boundary_round, repetitions, confirm_q,
                            snapshots[boundary_round],
                            snapshots[boundary_round - confirm_q],
                        )
                        boundary_round += repetitions * confirm_q
                    else:
                        trace.converged_round = boundary_round
                        trace.converged_period = confirm_q
                        trace.steady_fingerprint = self._fingerprint(
                            boundary_time, boundary_round
                        )
                    snapshots.clear()
                    canonicals.clear()
                    confirm_q = None
                elif boundary_round - confirm_from >= 2 * confirm_q:
                    confirm_q = None
                    canonicals.clear()
                    failed_confirms += 1
                    if failed_confirms >= self.confirm_budget:
                        detecting = False
                        snapshots.clear()
            elif boundary_round >= self.r_max + 2:
                # Phase 1: arm a confirmation when deltas look periodic.
                q = candidate_period(
                    boundary_round, snapshots, self.max_period, self.r_max
                )
                if q is not None and n - boundary_round > q:
                    confirm_q = q
                    confirm_from = boundary_round
                    canonicals[boundary_round] = self._canonical(
                        boundary_time, boundary_round
                    )

        executed = trace.num_instances
        expected = self.graph.num_vertices * n
        if executed != expected:
            raise SimulationError(
                f"executed {executed} instances, expected {expected}; "
                "dependency deadlock in the schedule"
            )
        trace.realized_makespan = self._max_finish
        trace.stats = trace.stats.merged_with(self._mem_stats)
        trace.events_processed = self._processed + self._events_skipped
        return trace
