"""Minimal discrete-event simulation engine.

A deterministic heap-based event queue: events carry a timestamp, a
priority (for same-time ordering), an optional *content key* and a
callback. Determinism matters -- the executor's traces are compared
across runs in tests -- so ties are broken by ``(priority, key,
sequence number)``, never by callback identity.

The content key exists for the steady-state engine: when two events share
a timestamp and a priority, a content key makes their order a function of
*what they are* (for the executor: the instance or edge they touch)
rather than of when they were enqueued. That property is what lets the
steady-state executor splice a converged machine state forward in time
(rebuilding the pending-event heap with fresh sequence numbers) without
perturbing the processing order. Events scheduled without a key keep the
legacy guarantee: same-timestamp, same-priority events fire in schedule
order.

Events may also carry an opaque ``tag`` describing their payload; the
engine never inspects it, but :meth:`EventQueue.pending_events` exposes
the queued events (in processing order) so callers can fingerprint or
rebuild the in-flight set -- the machinery behind
:class:`repro.sim.state.MachineState`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised on executor/engine inconsistencies (schedule violations)."""


@dataclass(order=True)
class Event:
    """One scheduled callback. Ordering: time, priority, key, then FIFO."""

    time: int
    priority: int
    #: content key for deterministic same-time ordering; the default
    #: ``()`` sorts before every non-empty key, preserving the legacy
    #: schedule-order behaviour for untagged events.
    key: Tuple[int, ...]
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    #: opaque payload describing the event (used by the steady-state
    #: executor to fingerprint and rebuild the in-flight set).
    tag: Any = field(compare=False, default=None)


class EventQueue:
    """Deterministic time-ordered event queue."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._now = 0
        self.processed = 0

    @property
    def now(self) -> int:
        """Current simulation time (last event's timestamp)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(
        self,
        time: int,
        callback: Callable[[], None],
        priority: int = 0,
        key: Tuple[int, ...] = (),
        tag: Any = None,
    ) -> Event:
        """Enqueue ``callback`` at ``time`` (must not be in the past)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, simulation time is {self._now}"
            )
        event = Event(time, priority, key, next(self._counter), callback, tag)
        heapq.heappush(self._heap, event)
        return event

    def pending_events(self) -> List[Event]:
        """Snapshot of the queued events, in processing order."""
        return sorted(self._heap)

    def clear_pending(self) -> List[Event]:
        """Remove and return every queued event (in processing order).

        Used by the steady-state executor's fast-forward splice: the
        in-flight set is drained, time-shifted, and re-scheduled.
        """
        events = sorted(self._heap)
        self._heap.clear()
        return events

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self._now = event.time
        self.processed += 1
        event.callback()
        return True

    def run(self, until: Optional[int] = None, max_events: int = 10_000_000) -> int:
        """Drain the queue (optionally stopping after time ``until``).

        Returns the final simulation time. ``max_events`` guards against
        runaway feedback loops in executor logic.
        """
        steps = 0
        while self._heap:
            if until is not None and self._heap[0].time > until:
                break
            if steps >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway simulation?"
                )
            self.step()
            steps += 1
        return self._now
