"""Minimal discrete-event simulation engine.

A deterministic heap-based event queue: events carry a timestamp, a
priority (for same-time ordering) and a callback. Determinism matters --
the executor's traces are compared across runs in tests -- so ties are
broken by (priority, sequence number), never by callback identity.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised on executor/engine inconsistencies (schedule violations)."""


@dataclass(order=True)
class Event:
    """One scheduled callback. Ordering: time, then priority, then FIFO."""

    time: int
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)


class EventQueue:
    """Deterministic time-ordered event queue."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._now = 0
        self.processed = 0

    @property
    def now(self) -> int:
        """Current simulation time (last event's timestamp)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(
        self, time: int, callback: Callable[[], None], priority: int = 0
    ) -> Event:
        """Enqueue ``callback`` at ``time`` (must not be in the past)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, simulation time is {self._now}"
            )
        event = Event(time, priority, next(self._counter), callback)
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self._now = event.time
        self.processed += 1
        event.callback()
        return True

    def run(self, until: Optional[int] = None, max_events: int = 10_000_000) -> int:
        """Drain the queue (optionally stopping after time ``until``).

        Returns the final simulation time. ``max_events`` guards against
        runaway feedback loops in executor logic.
        """
        steps = 0
        while self._heap:
            if until is not None and self._heap[0].time > until:
                break
            if steps >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway simulation?"
                )
            self.step()
            steps += 1
        return self._now
