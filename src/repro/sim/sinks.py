"""Pluggable trace sinks: where the executor's per-instance records go.

The executor used to append every :class:`InstanceRecord` and
:class:`TransferRecord` to unbounded lists, making trace memory ``O(V*N)``
in the iteration count. A :class:`TraceSink` decouples record *emission*
from record *retention* so memory stays bounded regardless of ``N``:

==================== =====================================================
sink                 retention policy
==================== =====================================================
:class:`InMemorySink` everything (the legacy behaviour; the default)
:class:`RingBufferSink` the most recent ``capacity`` records of each kind
:class:`SamplingWindowSink` records overlapping configured time windows
:class:`CountingSink` nothing -- counts only (incl. fast-forwarded work)
:class:`NullSink`    nothing at all
==================== =====================================================

When the steady-state engine fast-forwards converged rounds it never
materializes the skipped records; instead it notifies the sink once via
:meth:`TraceSink.on_fast_forward` with a :class:`FastForwardNotice`
summarizing what was skipped, so counting sinks stay exact.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Sequence, Tuple

from repro.sim.trace import InstanceRecord, TransferRecord

#: A half-open sampling window ``[start, end)`` in simulation time units.
Window = Tuple[int, int]


@dataclass(frozen=True)
class FastForwardNotice:
    """Summary of work the steady-state engine skipped in one splice."""

    #: number of converged rounds replayed analytically.
    rounds: int
    #: simulation-time shift applied to the machine state (``rounds * p``).
    time_shift: int
    #: logical-iteration shift applied to instance keys (``rounds``).
    iteration_shift: int
    #: instance records that were *not* emitted (one kernel per round).
    instances_skipped: int
    #: transfer records that were *not* emitted.
    transfers_skipped: int


class TraceSink:
    """Base sink: receives records, decides what to retain.

    The default implementation retains nothing; subclasses override the
    hooks they care about. ``instances()``/``transfers()`` return whatever
    the sink retained (possibly empty), in emission order.
    """

    def record_instance(self, record: InstanceRecord) -> None:
        """One executed operation instance."""

    def record_transfer(self, transfer: TransferRecord) -> None:
        """One intermediate-result movement."""

    def on_fast_forward(self, notice: FastForwardNotice) -> None:
        """Steady-state engine skipped ``notice.rounds`` converged rounds."""

    def instances(self) -> List[InstanceRecord]:
        return []

    def transfers(self) -> List[TransferRecord]:
        return []


class NullSink(TraceSink):
    """Drop everything; aggregates on the trace are the only output.

    The serving runtime uses this: per-request latency comes from the
    trace's aggregate counters, so retaining records would be pure
    memory overhead on a long-lived server.
    """


class InMemorySink(TraceSink):
    """Retain every record -- the legacy unbounded behaviour."""

    def __init__(self) -> None:
        self._instances: List[InstanceRecord] = []
        self._transfers: List[TransferRecord] = []

    def record_instance(self, record: InstanceRecord) -> None:
        self._instances.append(record)

    def record_transfer(self, transfer: TransferRecord) -> None:
        self._transfers.append(transfer)

    def instances(self) -> List[InstanceRecord]:
        return self._instances

    def transfers(self) -> List[TransferRecord]:
        return self._transfers


class RingBufferSink(TraceSink):
    """Retain the most recent ``capacity`` records of each kind."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("ring buffer capacity must be >= 1")
        self.capacity = capacity
        self._instances: Deque[InstanceRecord] = deque(maxlen=capacity)
        self._transfers: Deque[TransferRecord] = deque(maxlen=capacity)

    def record_instance(self, record: InstanceRecord) -> None:
        self._instances.append(record)

    def record_transfer(self, transfer: TransferRecord) -> None:
        self._transfers.append(transfer)

    def instances(self) -> List[InstanceRecord]:
        return list(self._instances)

    def transfers(self) -> List[TransferRecord]:
        return list(self._transfers)


class SamplingWindowSink(TraceSink):
    """Retain records overlapping the configured half-open time windows.

    A record is retained when its ``[start, finish)`` (or ``[issued,
    completed)``) interval intersects any window; instantaneous records
    (``finish == start``) are retained when their instant lies inside a
    window. This is the slice semantics :func:`repro.sim.chrome_trace.
    trace_to_events` applies when given a ``window=`` argument, so a
    windowed export from this sink matches the corresponding slice of a
    full-unroll export.
    """

    def __init__(self, windows: Sequence[Window]):
        if not windows:
            raise ValueError("need at least one sampling window")
        for start, end in windows:
            if end <= start:
                raise ValueError(f"empty window [{start}, {end})")
        self.windows: Tuple[Window, ...] = tuple(windows)
        self._instances: List[InstanceRecord] = []
        self._transfers: List[TransferRecord] = []

    def _overlaps(self, start: int, finish: int) -> bool:
        if finish == start:  # instantaneous: membership, not overlap
            finish = start + 1
        return any(start < end and finish > begin
                   for begin, end in self.windows)

    def record_instance(self, record: InstanceRecord) -> None:
        if self._overlaps(record.start, record.finish):
            self._instances.append(record)

    def record_transfer(self, transfer: TransferRecord) -> None:
        if self._overlaps(transfer.issued, transfer.completed):
            self._transfers.append(transfer)

    def instances(self) -> List[InstanceRecord]:
        return self._instances

    def transfers(self) -> List[TransferRecord]:
        return self._transfers


class CountingSink(TraceSink):
    """Count records without retaining them.

    ``instances_total``/``transfers_total`` include fast-forwarded work,
    so the counts match what a full unroll would have emitted.
    """

    def __init__(self) -> None:
        self.instances_emitted = 0
        self.transfers_emitted = 0
        self.instances_skipped = 0
        self.transfers_skipped = 0
        self.fast_forwards = 0

    @property
    def instances_total(self) -> int:
        return self.instances_emitted + self.instances_skipped

    @property
    def transfers_total(self) -> int:
        return self.transfers_emitted + self.transfers_skipped

    def record_instance(self, record: InstanceRecord) -> None:
        self.instances_emitted += 1

    def record_transfer(self, transfer: TransferRecord) -> None:
        self.transfers_emitted += 1

    def on_fast_forward(self, notice: FastForwardNotice) -> None:
        self.fast_forwards += 1
        self.instances_skipped += notice.instances_skipped
        self.transfers_skipped += notice.transfers_skipped
