"""Discrete-event execution of periodic schedules on the PIM machine model.

The analytic model of :mod:`repro.core` predicts schedule lengths from
closed-form timing; this package *executes* those schedules event by event
against the stateful machine models of :mod:`repro.pim` -- PE busy
timelines, cache residency, eDRAM vault queueing, crossbar port contention
-- and measures what actually happens. The validation experiment (A2 in
DESIGN.md) compares the two.
"""

from repro.sim.engine import Event, EventQueue, SimulationError
from repro.sim.executor import (
    ExecutionTrace,
    PeFaultError,
    ScheduleExecutor,
    simulate_sparta,
)
from repro.sim.modes import SimMode
from repro.sim.sinks import (
    CountingSink,
    FastForwardNotice,
    InMemorySink,
    NullSink,
    RingBufferSink,
    SamplingWindowSink,
    TraceSink,
)
from repro.sim.state import EventTag, MachineState
from repro.sim.trace import InstanceRecord, TransferKind

__all__ = [
    "CountingSink",
    "Event",
    "EventQueue",
    "EventTag",
    "ExecutionTrace",
    "FastForwardNotice",
    "InMemorySink",
    "InstanceRecord",
    "MachineState",
    "NullSink",
    "PeFaultError",
    "RingBufferSink",
    "SamplingWindowSink",
    "ScheduleExecutor",
    "SimMode",
    "SimulationError",
    "TraceSink",
    "TransferKind",
    "simulate_sparta",
]
