"""Explicit machine-state abstraction for the steady-state engine.

:class:`MachineState` bundles everything that determines the *future* of
a simulated run: PE busy clocks and pFIFO contents, vault service clocks,
crossbar port clocks, live cache slots, the per-instance dependency
bookkeeping, and the in-flight event set. Two operations make the
steady-state fast-forward sound:

* :meth:`MachineState.canonical` expresses the whole state *relative* to
  a round boundary (times relative to ``r * p``, logical iterations
  relative to ``r``). When the canonical states at two consecutive
  boundaries are equal, the simulation provably repeats with period ``p``
  and iteration shift 1 from there on -- the paper's steady state,
  observed rather than assumed.
* :meth:`MachineState.shift` translates every absolute clock and
  iteration index forward by a constant, which is an exact relabeling of
  the simulation. The executor uses it to splice the converged state from
  round ``k`` to round ``N`` and then simulate only the epilogue.

Clamping rule: clocks that lag the reference are clamped to zero in the
canonical form because every future event fires at or after the
reference, so a resource idle since ``T - 3`` and one idle since ``T - 9``
behave identically. Nominal start times of not-yet-started instances are
*not* clamped -- they feed the lateness accounting -- so convergence is
declared conservatively.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.pim.interconnect import Crossbar
from repro.pim.memory import MemorySystem
from repro.pim.pe import PEArray
from repro.sim.engine import EventQueue

EdgeKey = Tuple[int, int]
InstanceKey = Tuple[int, int]  # (op_id, logical iteration)


@dataclass(frozen=True)
class EventTag:
    """Structured payload of one executor event.

    The executor schedules every event with a tag so the in-flight set
    can be fingerprinted (relativized) and rebuilt (shifted) without
    inspecting callback closures.
    """

    kind: str  # "arrive" | "start" | "produce"
    op_id: int
    iteration: int
    edge: Tuple[int, int] = (-1, -1)
    size_bytes: int = 0

    def shifted(self, iterations: int) -> "EventTag":
        """The same event, relabelled ``iterations`` iterations later."""
        return EventTag(
            self.kind, self.op_id, self.iteration + iterations,
            self.edge, self.size_bytes,
        )


@dataclass
class MachineState:
    """All mutable simulation state of one executor run."""

    pes: PEArray
    memory: MemorySystem
    crossbar: Crossbar
    queue: EventQueue
    #: live cache slots: (edge key, iteration) -> slots held.
    cache_live: Dict[Tuple[EdgeKey, int], int] = field(default_factory=dict)
    #: unarrived in-edge count per materialized, not-yet-ready instance.
    pending: Dict[InstanceKey, int] = field(default_factory=dict)
    #: latest data-arrival time per pending instance.
    max_avail: Dict[InstanceKey, int] = field(default_factory=dict)
    #: static nominal start per materialized, not-yet-started instance.
    nominal: Dict[InstanceKey, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # canonical form / fingerprint
    # ------------------------------------------------------------------
    def canonical(self, reference_time: int, reference_iteration: int) -> tuple:
        """The state relative to a round boundary, as a comparable tuple.

        Equal canonical forms at consecutive boundaries imply the
        simulation is periodic from the earlier boundary onward (every
        component that can influence a future event is included; sorted
        where the underlying container order is irrelevant, in
        processing order where it is not).
        """
        t = reference_time
        r = reference_iteration
        pe_state = tuple(pe.relative_state(t) for pe in self.pes.pes)
        vault_state = tuple(v.relative_busy(t) for v in self.memory.vaults)
        crossbar_state = self.crossbar.relative_state(t)
        cache_state = tuple(sorted(
            (edge, iteration - r, slots)
            for (edge, iteration), slots in self.cache_live.items()
        ))
        pending_state = tuple(sorted(
            (op_id, iteration - r, count,
             max(self.max_avail[(op_id, iteration)] - t, 0))
            for (op_id, iteration), count in self.pending.items()
        ))
        nominal_state = tuple(sorted(
            (op_id, iteration - r, start - t)
            for (op_id, iteration), start in self.nominal.items()
        ))
        event_state = tuple(
            (
                event.time - t,
                event.priority,
                event.tag.kind,
                event.tag.op_id,
                event.tag.iteration - r,
                event.tag.edge,
                event.tag.size_bytes,
            )
            for event in self.queue.pending_events()
        )
        return (
            pe_state,
            vault_state,
            crossbar_state,
            self.memory.cache.used_slots,
            cache_state,
            pending_state,
            nominal_state,
            event_state,
        )

    def fingerprint(
        self, reference_time: int, reference_iteration: int
    ) -> str:
        """Stable digest of :meth:`canonical` (for logs and traces)."""
        canon = self.canonical(reference_time, reference_iteration)
        return hashlib.sha256(repr(canon).encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------
    # time/iteration translation (fast-forward splice)
    # ------------------------------------------------------------------
    def shift(self, time_delta: int, iteration_delta: int) -> None:
        """Translate clocks and iteration labels forward, in place.

        The event queue is *not* touched here: rebuilding events needs
        the executor's dispatcher (callbacks are derived from tags), so
        the executor drains, shifts and re-schedules them itself.
        """
        if time_delta < 0 or iteration_delta < 0:
            raise ValueError("fast-forward shifts must be >= 0")
        self.pes.shift_time(time_delta)
        self.memory.shift_time(time_delta)
        self.crossbar.shift_time(time_delta)
        self.memory.cache.relabel({
            (edge, iteration): (edge, iteration + iteration_delta)
            for (edge, iteration) in self.cache_live
        })
        self.cache_live = {
            (edge, iteration + iteration_delta): slots
            for (edge, iteration), slots in self.cache_live.items()
        }
        self.pending = {
            (op_id, iteration + iteration_delta): count
            for (op_id, iteration), count in self.pending.items()
        }
        self.max_avail = {
            (op_id, iteration + iteration_delta): when + time_delta
            for (op_id, iteration), when in self.max_avail.items()
        }
        self.nominal = {
            (op_id, iteration + iteration_delta): start + time_delta
            for (op_id, iteration), start in self.nominal.items()
        }
