"""Export execution traces to Chrome's trace-event JSON format.

Open the produced file in ``chrome://tracing`` (or Perfetto) to inspect a
simulated run visually: one row per PE plus one per vault-bound transfer
stream, complete ("X") events with microsecond-scaled timestamps (one
schedule time unit = 1 us by default).

Long runs don't need full traces: pass ``window=(start, end)`` to export
only the records overlapping one half-open time slice, or run the
executor with a :class:`~repro.sim.sinks.SamplingWindowSink` so the
records outside the window are never retained in the first place. The
two compose -- a windowed export of a window-sampled trace equals the
same window applied to a full-unroll trace.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.sim.executor import ExecutionTrace
from repro.sim.sinks import Window
from repro.sim.trace import TransferKind


def _in_window(start: int, finish: int, window: Optional[Window]) -> bool:
    """Half-open overlap test matching ``SamplingWindowSink`` semantics."""
    if window is None:
        return True
    if finish == start:  # instantaneous: membership, not overlap
        finish = start + 1
    begin, end = window
    return start < end and finish > begin


def trace_to_events(
    trace: ExecutionTrace,
    unit_us: float = 1.0,
    window: Optional[Window] = None,
) -> List[Dict[str, Any]]:
    """Convert a trace to a list of Chrome trace-event dictionaries.

    ``window`` restricts the export to records whose interval overlaps
    the half-open ``[start, end)`` slice (in schedule time units).
    """
    if unit_us <= 0:
        raise ValueError("unit_us must be positive")
    if window is not None and window[1] <= window[0]:
        raise ValueError(f"empty window [{window[0]}, {window[1]})")
    events: List[Dict[str, Any]] = []
    for record in trace.records:
        if not _in_window(record.start, record.finish, window):
            continue
        events.append(
            {
                "name": f"V{record.op_id}^{record.iteration}",
                "cat": "compute",
                "ph": "X",
                "pid": 0,
                "tid": f"PE{record.pe}",
                "ts": record.start * unit_us,
                "dur": (record.finish - record.start) * unit_us,
                "args": {
                    "op": record.op_id,
                    "iteration": record.iteration,
                    "lateness": record.lateness,
                },
            }
        )
    for transfer in trace.transfers:
        if transfer.completed <= transfer.issued:
            continue  # zero-latency on-chip moves clutter the view
        if not _in_window(transfer.issued, transfer.completed, window):
            continue
        row = "cache-path" if transfer.kind is TransferKind.CACHE else "eDRAM"
        events.append(
            {
                "name": f"I{transfer.edge}^{transfer.iteration}",
                "cat": "transfer",
                "ph": "X",
                "pid": 1,
                "tid": row,
                "ts": transfer.issued * unit_us,
                "dur": (transfer.completed - transfer.issued) * unit_us,
                "args": {"bytes": transfer.size_bytes},
            }
        )
    return events


def write_chrome_trace(
    trace: ExecutionTrace,
    path: Union[str, Path],
    unit_us: float = 1.0,
    window: Optional[Window] = None,
) -> None:
    """Write the trace as a ``chrome://tracing`` compatible JSON file."""
    payload = {
        "traceEvents": trace_to_events(trace, unit_us, window=window),
        "displayTimeUnit": "ms",
        "otherData": {
            "iterations": trace.iterations,
            "analytic_makespan": trace.analytic_makespan,
            "realized_makespan": trace.realized_makespan,
            "sim_mode": trace.sim_mode.value,
            "converged_round": trace.converged_round,
            "rounds_simulated": trace.rounds_simulated,
            "rounds_fast_forwarded": trace.rounds_fast_forwarded,
        },
    }
    if window is not None:
        payload["otherData"]["window"] = list(window)
    Path(path).write_text(json.dumps(payload))
