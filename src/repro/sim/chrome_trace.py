"""Export execution traces to Chrome's trace-event JSON format.

Open the produced file in ``chrome://tracing`` (or Perfetto) to inspect a
simulated run visually: one row per PE plus one per vault-bound transfer
stream, complete ("X") events with microsecond-scaled timestamps (one
schedule time unit = 1 us by default).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.sim.executor import ExecutionTrace
from repro.sim.trace import TransferKind


def trace_to_events(
    trace: ExecutionTrace, unit_us: float = 1.0
) -> List[Dict[str, Any]]:
    """Convert a trace to a list of Chrome trace-event dictionaries."""
    if unit_us <= 0:
        raise ValueError("unit_us must be positive")
    events: List[Dict[str, Any]] = []
    for record in trace.records:
        events.append(
            {
                "name": f"V{record.op_id}^{record.iteration}",
                "cat": "compute",
                "ph": "X",
                "pid": 0,
                "tid": f"PE{record.pe}",
                "ts": record.start * unit_us,
                "dur": (record.finish - record.start) * unit_us,
                "args": {
                    "op": record.op_id,
                    "iteration": record.iteration,
                    "lateness": record.lateness,
                },
            }
        )
    for transfer in trace.transfers:
        if transfer.completed <= transfer.issued:
            continue  # zero-latency on-chip moves clutter the view
        row = "cache-path" if transfer.kind is TransferKind.CACHE else "eDRAM"
        events.append(
            {
                "name": f"I{transfer.edge}^{transfer.iteration}",
                "cat": "transfer",
                "ph": "X",
                "pid": 1,
                "tid": row,
                "ts": transfer.issued * unit_us,
                "dur": (transfer.completed - transfer.issued) * unit_us,
                "args": {"bytes": transfer.size_bytes},
            }
        )
    return events


def write_chrome_trace(
    trace: ExecutionTrace, path: Union[str, Path], unit_us: float = 1.0
) -> None:
    """Write the trace as a ``chrome://tracing`` compatible JSON file."""
    payload = {
        "traceEvents": trace_to_events(trace, unit_us),
        "displayTimeUnit": "ms",
        "otherData": {
            "iterations": trace.iterations,
            "analytic_makespan": trace.analytic_makespan,
            "realized_makespan": trace.realized_makespan,
        },
    }
    Path(path).write_text(json.dumps(payload))
