"""Trace records produced by the schedule executor."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class TransferKind(enum.Enum):
    """Which path an intermediate result travelled."""

    CACHE = "cache"
    EDRAM = "edram"


@dataclass(frozen=True)
class InstanceRecord:
    """One executed operation instance.

    ``nominal_start`` is what the static schedule prescribed
    (``(round - 1) * p + s_i``); ``start`` is when the simulator could
    actually begin (after data arrival and PE availability). The
    difference is the instance's *lateness* -- zero when the analytic
    model's premises hold on the simulated machine.
    """

    op_id: int
    iteration: int
    pe: int
    nominal_start: int
    start: int
    finish: int

    @property
    def lateness(self) -> int:
        return self.start - self.nominal_start


@dataclass(frozen=True)
class TransferRecord:
    """One intermediate-result movement between producer and consumer."""

    edge: Tuple[int, int]
    iteration: int
    kind: TransferKind
    size_bytes: int
    issued: int
    completed: int

    @property
    def latency(self) -> int:
        return self.completed - self.issued
