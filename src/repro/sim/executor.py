"""Execute a Para-CONV periodic schedule on the machine model.

The executor materializes every operation instance of ``N`` logical
iterations plus the prologue, respecting the retimed dependency structure:
instance ``l`` of operation ``i`` runs in round ``l + R_max - R(i)`` at its
kernel offset, and the intermediate result of edge ``(i, j)`` flows from
producer instance ``l`` to consumer instance ``l`` -- ``R(i) - R(j)``
rounds apart in wall-clock time.

Unlike the analytic model, the executor charges *real* resource usage:

* eDRAM-resident results queue on their vault and occupy crossbar ports
  for the write and the prefetch read;
* cache-resident results occupy cache slots from production to
  consumption; if the static allocation transiently overflows (an edge
  with relative retiming > 0 keeps several instances alive), the overflow
  instance spills to eDRAM and is counted;
* PEs execute one instance at a time at their static placement.

Instances start no earlier than their nominal time ``(round-1)*p + s_i``;
any *lateness* beyond it means an analytic-model premise did not hold on
the simulated machine (typically vault contention). The validation
experiment asserts the observed lateness stays small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.paraconv import ParaConvResult
from repro.core.baseline import SpartaResult
from repro.pim.config import PimConfig
from repro.pim.energy import EnergyModel, EnergyReport
from repro.pim.interconnect import Crossbar
from repro.pim.memory import MemorySystem, Placement
from repro.pim.pe import PEArray
from repro.pim.stats import TrafficStats
from repro.sim.engine import EventQueue, SimulationError
from repro.sim.trace import InstanceRecord, TransferKind, TransferRecord

EdgeKey = Tuple[int, int]
InstanceKey = Tuple[int, int]  # (op_id, logical iteration)


@dataclass
class ExecutionTrace:
    """Everything measured while executing a schedule."""

    config: PimConfig
    iterations: int
    analytic_makespan: int
    realized_makespan: int
    records: List[InstanceRecord] = field(default_factory=list)
    transfers: List[TransferRecord] = field(default_factory=list)
    stats: TrafficStats = field(default_factory=TrafficStats)
    cache_peak_slots: int = 0
    cache_spills: int = 0
    events_processed: int = 0

    @property
    def max_lateness(self) -> int:
        return max((r.lateness for r in self.records), default=0)

    @property
    def total_lateness(self) -> int:
        return sum(r.lateness for r in self.records)

    @property
    def slowdown(self) -> float:
        """Realized over analytic makespan (1.0 = model exact)."""
        if self.analytic_makespan == 0:
            return 1.0
        return self.realized_makespan / self.analytic_makespan

    def pe_utilization(self) -> float:
        """Aggregate busy fraction over the realized makespan."""
        if self.realized_makespan == 0:
            return 0.0
        busy = sum(r.finish - r.start for r in self.records)
        width = len({r.pe for r in self.records}) or 1
        return busy / (self.realized_makespan * width)

    def energy(self, model: Optional[EnergyModel] = None) -> EnergyReport:
        return (model or EnergyModel()).estimate(self.stats, self.config)


class ScheduleExecutor:
    """Discrete-event executor for :class:`ParaConvResult` schedules."""

    def __init__(self, config: PimConfig, num_vaults: int = 16):
        self.config = config
        self.num_vaults = num_vaults

    def execute(self, result: ParaConvResult, iterations: int = 20) -> ExecutionTrace:
        """Run ``iterations`` logical iterations of one PE group."""
        if iterations < 1:
            raise SimulationError("iterations must be >= 1")
        schedule = result.schedule
        graph = result.graph
        kernel = schedule.kernel
        period = schedule.period
        r_max = schedule.max_retiming
        width = result.group_width

        queue = EventQueue()
        pes = PEArray(self.config.with_pes(width))
        memory = MemorySystem(self.config, num_vaults=self.num_vaults)
        # Per-group cache share, as the allocator assumed.
        memory.cache.capacity_slots = max(
            memory.cache.capacity_slots // result.num_groups, 0
        )
        crossbar = Crossbar(num_inputs=width, num_outputs=self.num_vaults)
        trace = ExecutionTrace(
            config=self.config,
            iterations=iterations,
            analytic_makespan=r_max * period + iterations * period,
            realized_makespan=0,
        )

        # --- instance bookkeeping -------------------------------------
        pending: Dict[InstanceKey, int] = {}
        max_avail: Dict[InstanceKey, int] = {}
        nominal: Dict[InstanceKey, int] = {}
        cache_live: Dict[Tuple[EdgeKey, int], int] = {}

        def round_of(op_id: int, iteration: int) -> int:
            return iteration + r_max - schedule.retiming[op_id]

        instances: List[InstanceKey] = []
        for op in graph.operations():
            for iteration in range(1, iterations + 1):
                key = (op.op_id, iteration)
                instances.append(key)
                nominal[key] = (round_of(op.op_id, iteration) - 1) * period + (
                    kernel.start(op.op_id)
                )
                # Dependencies: in-edges whose producer instance exists.
                deps = sum(
                    1
                    for _edge in graph.in_edges(op.op_id)
                )
                pending[key] = deps
                max_avail[key] = 0

        # --- event handlers --------------------------------------------
        from repro.pim.pe import FifoEntry

        def data_arrived(
            consumer: InstanceKey, when: int, edge_key: EdgeKey = None,
            size_bytes: int = 0,
        ) -> None:
            max_avail[consumer] = max(max_avail[consumer], when)
            pending[consumer] -= 1
            # Stage the datum in the consumer PE's pFIFO (occupancy stats;
            # a full FIFO degrades to a direct cache/eDRAM read).
            if edge_key is not None:
                pe = pes[kernel.pe_of(consumer[0])]
                if not pe.pfifo.full:
                    pe.pfifo.push(FifoEntry(edge_key, size_bytes))
                    trace.stats.fifo_pushes += 1
            if pending[consumer] == 0:
                start_at = max(nominal[consumer], max_avail[consumer], queue.now)
                queue.schedule(start_at, lambda c=consumer: attempt_start(c), 1)

        def attempt_start(key: InstanceKey) -> None:
            op_id, iteration = key
            op = graph.operation(op_id)
            pe = pes[kernel.pe_of(op_id)]
            # Consume the pFIFO entries staged for this instance.
            for _ in range(graph.in_degree(op_id)):
                if len(pe.pfifo):
                    pe.pfifo.pop()
            start, finish = pe.reserve(queue.now, op.execution_time)
            trace.records.append(
                InstanceRecord(
                    op_id=op_id,
                    iteration=iteration,
                    pe=pe.pe_id,
                    nominal_start=nominal[key],
                    start=start,
                    finish=finish,
                )
            )
            trace.stats.alu_ops += max(op.work, op.execution_time)
            # Consume: free cache slots held by in-edges.
            for edge in graph.in_edges(op_id):
                live = (edge.key, iteration)
                if live in cache_live:
                    memory.cache.remove(live)
                    del cache_live[live]
            queue.schedule(finish, lambda k=key: produce(k), 2)

        def produce(key: InstanceKey) -> None:
            op_id, iteration = key
            finish = queue.now
            for edge in graph.out_edges(op_id):
                if not 1 <= iteration <= iterations:
                    continue
                consumer = (edge.consumer, iteration)
                placement = schedule.placements[edge.key]
                if placement is Placement.CACHE:
                    slots = self.config.slots_required(edge.size_bytes)
                    if memory.cache.fits(slots):
                        memory.cache.insert((edge.key, iteration), slots)
                        cache_live[(edge.key, iteration)] = slots
                        trace.cache_peak_slots = max(
                            trace.cache_peak_slots, memory.cache.used_slots
                        )
                        memory.record_cache_transfer(edge.size_bytes)
                        arrival = finish + self.config.cache_transfer_units(
                            edge.size_bytes
                        )
                        trace.transfers.append(
                            TransferRecord(
                                edge.key, iteration, TransferKind.CACHE,
                                edge.size_bytes, finish, arrival,
                            )
                        )
                        queue.schedule(
                            arrival,
                            lambda c=consumer, t=arrival, k=edge.key,
                            b=edge.size_bytes: data_arrived(c, t, k, b),
                            0,
                        )
                        continue
                    trace.cache_spills += 1  # transient overflow: spill
                arrival = self._edram_roundtrip(
                    edge.key, edge.size_bytes, finish,
                    kernel.pe_of(op_id), kernel.pe_of(edge.consumer),
                    memory, crossbar,
                )
                trace.transfers.append(
                    TransferRecord(
                        edge.key, iteration, TransferKind.EDRAM,
                        edge.size_bytes, finish, arrival,
                    )
                )
                queue.schedule(
                    arrival,
                    lambda c=consumer, t=arrival, k=edge.key,
                    b=edge.size_bytes: data_arrived(c, t, k, b),
                    0,
                )

        # --- kick off ----------------------------------------------------
        for key in instances:
            if pending[key] == 0:
                queue.schedule(nominal[key], lambda k=key: attempt_start(k), 1)

        queue.run()
        executed = len(trace.records)
        expected = graph.num_vertices * iterations
        if executed != expected:
            raise SimulationError(
                f"executed {executed} instances, expected {expected}; "
                "dependency deadlock in the schedule"
            )
        trace.realized_makespan = max(r.finish for r in trace.records)
        trace.stats = trace.stats.merged_with(memory.stats)
        trace.events_processed = queue.processed
        return trace

    def _edram_roundtrip(
        self,
        edge_key: EdgeKey,
        size_bytes: int,
        finish: int,
        producer_pe: int,
        consumer_pe: int,
        memory: MemorySystem,
        crossbar: Crossbar,
    ) -> int:
        """Prefetch an intermediate result through the stacked memory.

        The producer writes through to its vault while still executing
        (the PIM write path pipelines into production), so the visible
        cost is the consumer-side fetch issued at production time: the
        vault queues and services the access, then the data crosses the
        TSV/crossbar wire -- together exactly the analytic
        ``edram_transfer_units`` when the vault is idle, more under
        contention. The crossbar ports are occupied for the bandwidth
        share of the transfer (not its latency), so independent transfers
        overlap as on real hardware.
        """
        vault = memory.vault_for(edge_key)
        latency = self.config.edram_transfer_units(size_bytes)
        service = vault.access_time(size_bytes)
        port_busy = self.config.cache_transfer_units(size_bytes)
        issued, _ = crossbar.transfer(
            consumer_pe, vault.vault_id % crossbar.num_outputs, port_busy,
            finish, size_bytes,
        )
        serviced = vault.read(size_bytes, issued)
        arrival = serviced + max(0, latency - service)
        memory.record_edram_transfer(size_bytes)
        return arrival


def simulate_sparta(
    result: SpartaResult, iterations: int = 20, num_vaults: int = 16
) -> ExecutionTrace:
    """Execute a SPARTA schedule: iterations back-to-back on one group.

    The stalled occupancies are already folded into the kernel, so the
    executor only validates resource feasibility and accumulates traffic:
    every eDRAM-placed in-edge of an operation counts as a demand fetch.
    """
    if iterations < 1:
        raise SimulationError("iterations must be >= 1")
    graph = result.graph
    kernel = result.kernel
    config = result.config
    length = result.iteration_length
    memory = MemorySystem(config, num_vaults=num_vaults)
    trace = ExecutionTrace(
        config=config,
        iterations=iterations,
        analytic_makespan=iterations * length,
        realized_makespan=iterations * length,
    )
    for iteration in range(1, iterations + 1):
        base = (iteration - 1) * length
        for op in graph.operations():
            start = base + kernel.start(op.op_id)
            finish = base + kernel.finish(op.op_id)
            trace.records.append(
                InstanceRecord(
                    op.op_id, iteration, kernel.pe_of(op.op_id),
                    start, start, finish,
                )
            )
            trace.stats.alu_ops += max(op.work, op.execution_time)
        for edge in graph.edges():
            if result.placements[edge.key] is Placement.CACHE:
                memory.record_cache_transfer(edge.size_bytes)
            else:
                memory.record_edram_transfer(edge.size_bytes)
    trace.stats = trace.stats.merged_with(memory.stats)
    return trace
