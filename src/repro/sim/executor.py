"""Execute a Para-CONV periodic schedule on the machine model.

The executor simulates the operation instances of ``N`` logical
iterations plus the prologue, respecting the retimed dependency structure:
instance ``l`` of operation ``i`` runs in round ``l + R_max - R(i)`` at its
kernel offset, and the intermediate result of edge ``(i, j)`` flows from
producer instance ``l`` to consumer instance ``l`` -- ``R(i) - R(j)``
rounds apart in wall-clock time.

Unlike the analytic model, the executor charges *real* resource usage:

* eDRAM-resident results queue on their vault and occupy crossbar ports
  for the write and the prefetch read;
* cache-resident results occupy cache slots from production to
  consumption; if the static allocation transiently overflows (an edge
  with relative retiming > 0 keeps several instances alive), the overflow
  instance spills to eDRAM and is counted;
* PEs execute one instance at a time at their static placement.

Instances start no earlier than their nominal time ``(round-1)*p + s_i``;
any *lateness* beyond it means an analytic-model premise did not hold on
the simulated machine (typically vault contention). The validation
experiment asserts the observed lateness stays small.

Two simulation modes (:class:`~repro.sim.modes.SimMode`):

* ``FULL_UNROLL`` -- the oracle. Every instance is simulated event by
  event. Iterations are still *materialized lazily* (one round ahead of
  the frontier), so dependency bookkeeping stays ``O(V * R_max)`` even
  though the event count is ``O(V * N)``.
* ``STEADY_STATE`` -- the paper's periodicity, exploited. The engine
  simulates round by round; at each round boundary past the prologue it
  takes the :class:`~repro.sim.state.MachineState` canonical form. When
  two consecutive boundaries match (modulo the constant offsets ``p`` in
  time and ``1`` in iteration index), the simulation is provably periodic:
  the remaining ``N - k`` full rounds are fast-forwarded in O(1) by
  replaying the converged per-round stats delta and splicing every clock
  forward ``(N - k) * p`` time units, then only the epilogue (the final
  ``R_max`` partial rounds) is simulated. Aggregate statistics are
  *identical* to the full unroll -- ``repro.verify.differential_sim``
  asserts it across the benchmark suite.

Record retention is delegated to a pluggable
:class:`~repro.sim.sinks.TraceSink`, so trace memory is bounded
regardless of ``N``.

Fault injection: the executor optionally consumes a
:class:`~repro.pim.faults.FaultModel`. Failure masks activate at
iteration (round) boundaries; the moment a scheduled operation attempts
to start on a dead PE, or a transfer touches a dead vault (including the
prefetch of an intermediate result whose eDRAM home vault died), the run
aborts with a typed :class:`PeFaultError` carrying the machine-state
round, the simulated time and the failed unit. The steady-state engine
treats every fault boundary as a convergence barrier: fingerprints taken
before it are invalidated and the O(1) fast-forward never splices across
it, so a timed fault can never be skipped by the acceleration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.baseline import SpartaResult
from repro.core.paraconv import ParaConvResult
from repro.pim.config import PimConfig
from repro.pim.energy import EnergyModel, EnergyReport
from repro.pim.faults import FAULT_UNIT_PE, FAULT_UNIT_VAULT, FaultModel
from repro.pim.interconnect import Crossbar
from repro.pim.memory import MemorySystem, Placement
from repro.pim.pe import FifoEntry, PEArray
from repro.pim.stats import TrafficStats
from repro.sim.engine import EventQueue, SimulationError
from repro.sim.modes import SimMode
from repro.sim.sinks import FastForwardNotice, InMemorySink, TraceSink
from repro.sim.state import EdgeKey, EventTag, InstanceKey, MachineState
from repro.sim.trace import InstanceRecord, TransferKind, TransferRecord

__all__ = [
    "EdgeKey",
    "ExecutionTrace",
    "InstanceKey",
    "PeFaultError",
    "ScheduleExecutor",
    "SimMode",
    "simulate_sparta",
]

#: Event priorities: arrivals before starts before productions at a tie.
_PRIO_ARRIVE = 0
_PRIO_START = 1
_PRIO_PRODUCE = 2


class PeFaultError(SimulationError):
    """A scheduled operation or transfer hit a dead unit.

    Raised by the executor when the active fault mask covers a PE that an
    operation instance is about to start on, or a vault that a transfer
    (an intermediate result's eDRAM round-trip) must touch. Despite the
    name — the common case, and the one the paper's PE-array model makes
    interesting — it covers both unit kinds; ``unit`` disambiguates.

    Attributes:
        unit: ``"pe"`` or ``"vault"``.
        unit_id: logical id of the dead unit in the simulated machine.
        round: machine-state round (iteration boundary count) in which
            the dead unit was hit.
        time: simulated time units at the moment of impact.
        fault_iteration: iteration boundary at which the unit died
            (0 for units dead before the run started).
    """

    def __init__(
        self,
        unit: str,
        unit_id: int,
        round: int,
        time: int,
        fault_iteration: int,
    ):
        self.unit = unit
        self.unit_id = unit_id
        self.round = round
        self.time = time
        self.fault_iteration = fault_iteration
        super().__init__(
            f"{unit} {unit_id} is dead (failed at iteration boundary "
            f"{fault_iteration}); scheduled work hit it in round {round} "
            f"at t={time}"
        )


@dataclass
class ExecutionTrace:
    """Everything measured while executing a schedule.

    Per-record data (``records``/``transfers``) lives in the pluggable
    ``sink`` and may be sampled or dropped; the aggregate counters below
    are maintained incrementally and are *exact* in every mode -- they
    are what the steady-state fast-forward replays and what the
    differential check compares against the full unroll.
    """

    config: PimConfig
    iterations: int
    analytic_makespan: int
    realized_makespan: int
    sink: TraceSink = field(default_factory=InMemorySink)
    stats: TrafficStats = field(default_factory=TrafficStats)
    cache_peak_slots: int = 0
    cache_spills: int = 0
    events_processed: int = 0
    # --- exact aggregates (sink-independent) ---------------------------
    num_instances: int = 0
    num_transfers: int = 0
    busy_units: int = 0
    lateness_total: int = 0
    lateness_max: int = 0
    pes_used: Set[int] = field(default_factory=set)
    # --- steady-state observability ------------------------------------
    sim_mode: SimMode = SimMode.FULL_UNROLL
    #: round boundary at which the machine fingerprint converged.
    converged_round: Optional[int] = None
    #: detected steady-state period, in rounds (1 = the paper's exact
    #: round-to-round repetition; >1 = a longer limit cycle).
    converged_period: Optional[int] = None
    #: rounds actually simulated event by event.
    rounds_simulated: int = 0
    #: converged rounds replayed analytically (0 in full-unroll mode).
    rounds_fast_forwarded: int = 0
    #: digest of the converged machine state (None before convergence).
    steady_fingerprint: Optional[str] = None

    @property
    def records(self) -> List[InstanceRecord]:
        """Instance records the sink retained (all of them by default)."""
        return self.sink.instances()

    @property
    def transfers(self) -> List[TransferRecord]:
        """Transfer records the sink retained (all of them by default)."""
        return self.sink.transfers()

    @property
    def max_lateness(self) -> int:
        return self.lateness_max

    @property
    def total_lateness(self) -> int:
        return self.lateness_total

    @property
    def slowdown(self) -> float:
        """Realized over analytic makespan (1.0 = model exact)."""
        if self.analytic_makespan == 0:
            return 1.0
        return self.realized_makespan / self.analytic_makespan

    def pe_utilization(self) -> float:
        """Aggregate busy fraction over the realized makespan."""
        if self.realized_makespan == 0:
            return 0.0
        width = len(self.pes_used) or 1
        return self.busy_units / (self.realized_makespan * width)

    def energy(self, model: Optional[EnergyModel] = None) -> EnergyReport:
        return (model or EnergyModel()).estimate(self.stats, self.config)

    def aggregate_signature(self) -> Dict[str, object]:
        """The exact aggregates, as one comparable mapping.

        Two traces of the same schedule are equivalent -- regardless of
        sim mode or sink -- iff their signatures match. This is the
        object the ``differential_simulate`` verification check compares.
        """
        return {
            "iterations": self.iterations,
            "analytic_makespan": self.analytic_makespan,
            "realized_makespan": self.realized_makespan,
            "stats": self.stats.as_dict(),
            "cache_peak_slots": self.cache_peak_slots,
            "cache_spills": self.cache_spills,
            "events_processed": self.events_processed,
            "num_instances": self.num_instances,
            "num_transfers": self.num_transfers,
            "busy_units": self.busy_units,
            "lateness_total": self.lateness_total,
            "lateness_max": self.lateness_max,
            "pes_used": tuple(sorted(self.pes_used)),
            "energy_total_pj": self.energy().total_pj,
        }


def candidate_period(
    boundary_round: int,
    snapshots: Dict[int, "_BoundarySnapshot"],
    max_period: int,
    r_max: int,
) -> Optional[int]:
    """Smallest ``q`` whose counter deltas look ``q``-periodic.

    Cheap necessary condition shared by the object and columnar engines:
    the per-round counter increments over the last ``q`` rounds must
    equal the increments over the ``q`` rounds before. Only then is the
    exact (expensive) canonical-form confirmation attempted.
    """
    r = boundary_round
    for q in range(1, max_period + 1):
        if r - 2 * q < r_max + 1:
            break  # comparison window would reach into the prologue
        if all(
            (r - i in snapshots and r - i - q in snapshots
             and r - i - 1 in snapshots and r - i - q - 1 in snapshots
             and snapshots[r - i].delta(snapshots[r - i - 1])
             == snapshots[r - i - q].delta(snapshots[r - i - q - 1]))
            for i in range(q)
        ):
            return q
    return None


@dataclass(frozen=True)
class _BoundarySnapshot:
    """Monotone counters at a round boundary (for per-round deltas)."""

    trace_stats: Tuple[int, ...]
    memory_stats: Tuple[int, ...]
    cache_spills: int
    num_instances: int
    num_transfers: int
    busy_units: int
    lateness_total: int
    events_processed: int

    def delta(self, earlier: "_BoundarySnapshot") -> tuple:
        """Counter increments since ``earlier``, as one comparable tuple.

        Equal deltas across a candidate period are a cheap *necessary*
        condition for periodicity; the engine uses them to decide when
        computing the (much more expensive) exact canonical form is
        worth it.
        """
        return (
            tuple(a - b for a, b in zip(self.trace_stats, earlier.trace_stats)),
            tuple(a - b for a, b in zip(self.memory_stats, earlier.memory_stats)),
            self.cache_spills - earlier.cache_spills,
            self.num_instances - earlier.num_instances,
            self.num_transfers - earlier.num_transfers,
            self.busy_units - earlier.busy_units,
            self.lateness_total - earlier.lateness_total,
            self.events_processed - earlier.events_processed,
        )


class ScheduleExecutor:
    """Discrete-event executor for :class:`ParaConvResult` schedules.

    Args:
        config: machine description.
        num_vaults: eDRAM vault count of the stacked memory.
        mode: :class:`SimMode` -- ``FULL_UNROLL`` (oracle, default) or
            ``STEADY_STATE`` (fingerprint convergence + O(1)
            fast-forward). Aggregates are identical either way.
        sink: where per-record trace data goes; defaults to a fresh
            unbounded :class:`~repro.sim.sinks.InMemorySink` per run.
        steady_max_period: longest limit cycle (in rounds) the
            steady-state detector looks for. 1 checks only the paper's
            exact round-to-round repetition; larger values also catch
            oscillations introduced by transient cache spills.
        steady_confirm_budget: how many failed exact confirmations the
            detector tolerates before it stops looking, bounding the
            fingerprint overhead on runs that never settle.
        fault_model: optional :class:`~repro.pim.faults.FaultModel`
            applied to every run (overridable per ``execute`` call). When
            a scheduled op lands on a dead PE or a transfer touches a
            dead vault, the run raises :class:`PeFaultError`; the
            steady-state fast-forward never splices across a fault
            boundary, and convergence fingerprints taken before one are
            invalidated.
    """

    def __init__(
        self,
        config: PimConfig,
        num_vaults: int = 16,
        mode: SimMode = SimMode.FULL_UNROLL,
        sink: Optional[TraceSink] = None,
        steady_max_period: int = 8,
        steady_confirm_budget: int = 8,
        fault_model: Optional[FaultModel] = None,
        round_probe=None,
    ):
        if steady_max_period < 1:
            raise SimulationError("steady_max_period must be >= 1")
        if steady_confirm_budget < 1:
            raise SimulationError("steady_confirm_budget must be >= 1")
        self.config = config
        self.num_vaults = num_vaults
        self.mode = SimMode.from_name(mode)
        self._sink = sink
        self.steady_max_period = steady_max_period
        self.steady_confirm_budget = steady_confirm_budget
        self.fault_model = fault_model
        #: optional callable ``(boundary_round, _BoundarySnapshot) -> None``
        #: invoked after every simulated round boundary -- the hook the
        #: per-round columnar/object equivalence battery observes.
        self.round_probe = round_probe

    def execute(
        self,
        result: ParaConvResult,
        iterations: int = 20,
        sink: Optional[TraceSink] = None,
        fault_model: Optional[FaultModel] = None,
    ) -> ExecutionTrace:
        """Run ``iterations`` logical iterations of one PE group."""
        if iterations < 1:
            raise SimulationError("iterations must be >= 1")
        run_sink = sink if sink is not None else (
            self._sink if self._sink is not None else InMemorySink()
        )
        if self.mode.is_columnar:
            # Imported lazily: columnar.py imports this module's trace
            # and snapshot types.
            from repro.sim.columnar import ColumnarRun

            run_cls = ColumnarRun
        else:
            run_cls = _ExecutorRun
        run = run_cls(
            self.config, self.num_vaults, result, iterations,
            self.mode, run_sink,
            max_period=self.steady_max_period,
            confirm_budget=self.steady_confirm_budget,
            fault_model=(
                fault_model if fault_model is not None else self.fault_model
            ),
            round_probe=self.round_probe,
        )
        return run.execute()


class _ExecutorRun:
    """One executor invocation: machine state + event handlers + loop."""

    def __init__(
        self,
        config: PimConfig,
        num_vaults: int,
        result: ParaConvResult,
        iterations: int,
        mode: SimMode,
        sink: TraceSink,
        max_period: int = 8,
        confirm_budget: int = 8,
        fault_model: Optional[FaultModel] = None,
        round_probe=None,
    ):
        self.config = config
        self.result = result
        self.iterations = iterations
        self.mode = mode
        #: trivial fault models are normalized away so the fault-free hot
        #: path stays branch-cheap.
        self.fault_model = (
            fault_model
            if fault_model is not None and not fault_model.is_trivial
            else None
        )
        self._failed_pes: frozenset = frozenset()
        self._failed_vaults: frozenset = frozenset()
        self._current_round = 0
        self.schedule = result.schedule
        self.graph = result.graph
        self.kernel = self.schedule.kernel
        self.period = self.schedule.period
        self.r_max = self.schedule.max_retiming
        width = result.group_width

        memory = MemorySystem(config, num_vaults=num_vaults)
        # Per-group cache share, as the allocator assumed.
        memory.cache.capacity_slots = max(
            memory.cache.capacity_slots // result.num_groups, 0
        )
        self.state = MachineState(
            pes=PEArray(config.with_pes(width)),
            memory=memory,
            crossbar=Crossbar(
                num_inputs=width, num_outputs=num_vaults, keep_records=False
            ),
            queue=EventQueue(),
        )
        self.trace = ExecutionTrace(
            config=config,
            iterations=iterations,
            analytic_makespan=self.r_max * self.period
            + iterations * self.period,
            realized_makespan=0,
            sink=sink,
            sim_mode=mode,
        )
        #: next logical iteration to materialize (1-based).
        self._next_iteration = 1
        #: running maximum finish time over all emitted instances.
        self._max_finish = 0
        self._converged = False
        # --- steady-state detector configuration -----------------------
        self.max_period = max_period
        self.confirm_budget = confirm_budget
        self._round_probe = round_probe

    # ------------------------------------------------------------------
    # event plumbing
    # ------------------------------------------------------------------
    def _dispatch(self, tag: EventTag) -> None:
        if tag.kind == "arrive":
            self._data_arrived(tag)
        elif tag.kind == "start":
            self._attempt_start((tag.op_id, tag.iteration))
        elif tag.kind == "produce":
            self._produce((tag.op_id, tag.iteration))
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event kind {tag.kind!r}")

    def _schedule_event(self, time: int, tag: EventTag, priority: int) -> None:
        """Schedule a tagged event with its content-derived tie-break key.

        The key makes same-time ordering a function of event identity
        (iteration, operation, edge), never of enqueue order -- the
        property the fast-forward splice relies on when it rebuilds the
        in-flight set with fresh sequence numbers.
        """
        key = (tag.iteration, tag.op_id) + tag.edge
        self.state.queue.schedule(
            time, lambda: self._dispatch(tag), priority, key=key, tag=tag
        )

    # ------------------------------------------------------------------
    # instance lifecycle
    # ------------------------------------------------------------------
    def _round_of(self, op_id: int, iteration: int) -> int:
        return iteration + self.r_max - self.schedule.retiming[op_id]

    def _materialize(self, iteration: int) -> None:
        """Create the dependency bookkeeping for one logical iteration.

        Source instances are scheduled at their nominal starts; dependent
        instances wait in ``pending`` until every in-edge delivered.
        """
        state = self.state
        for op in self.graph.operations():
            key = (op.op_id, iteration)
            nominal = (
                self._round_of(op.op_id, iteration) - 1
            ) * self.period + self.kernel.start(op.op_id)
            state.nominal[key] = nominal
            degree = self.graph.in_degree(op.op_id)
            if degree == 0:
                self._schedule_event(
                    nominal,
                    EventTag("start", op.op_id, iteration),
                    _PRIO_START,
                )
            else:
                state.pending[key] = degree
                state.max_avail[key] = 0

    def _data_arrived(self, tag: EventTag) -> None:
        state = self.state
        consumer: InstanceKey = (tag.op_id, tag.iteration)
        when = state.queue.now
        state.max_avail[consumer] = max(state.max_avail[consumer], when)
        state.pending[consumer] -= 1
        # Stage the datum in the consumer PE's pFIFO (occupancy stats;
        # a full FIFO degrades to a direct cache/eDRAM read).
        pe = state.pes[self.kernel.pe_of(tag.op_id)]
        if not pe.pfifo.full:
            pe.pfifo.push(FifoEntry(tag.edge, tag.size_bytes))
            self.trace.stats.fifo_pushes += 1
        if state.pending[consumer] == 0:
            start_at = max(
                state.nominal[consumer], state.max_avail[consumer],
                state.queue.now,
            )
            del state.pending[consumer]
            del state.max_avail[consumer]
            self._schedule_event(
                start_at,
                EventTag("start", tag.op_id, tag.iteration),
                _PRIO_START,
            )

    def _raise_fault(self, unit: str, unit_id: int) -> None:
        assert self.fault_model is not None
        raise PeFaultError(
            unit,
            unit_id,
            round=self._current_round,
            time=self.state.queue.now,
            fault_iteration=self.fault_model.fault_iteration_of(unit, unit_id),
        )

    def _update_fault_mask(self, boundary_round: int) -> bool:
        """Refresh the active failure masks; True when a unit just died."""
        assert self.fault_model is not None
        pes, vaults = self.fault_model.mask_at(boundary_round)
        changed = pes != self._failed_pes or vaults != self._failed_vaults
        self._failed_pes = pes
        self._failed_vaults = vaults
        return changed

    def _attempt_start(self, key: InstanceKey) -> None:
        state = self.state
        trace = self.trace
        op_id, iteration = key
        op = self.graph.operation(op_id)
        pe_id = self.kernel.pe_of(op_id)
        if pe_id in self._failed_pes:
            # The schedule placed this instance on a PE that is dead under
            # the active fault mask: abort before mutating machine state.
            self._raise_fault(FAULT_UNIT_PE, pe_id)
        pe = state.pes[pe_id]
        # Consume the pFIFO entries staged for this instance -- by edge
        # key, so a neighbour instance's staged datum is never stolen.
        for edge in self.graph.in_edges(op_id):
            pe.pfifo.pop_matching(edge.key)
        start, finish = pe.reserve(state.queue.now, op.execution_time)
        nominal = state.nominal.pop(key)
        record = InstanceRecord(
            op_id=op_id,
            iteration=iteration,
            pe=pe.pe_id,
            nominal_start=nominal,
            start=start,
            finish=finish,
        )
        trace.sink.record_instance(record)
        trace.num_instances += 1
        trace.busy_units += finish - start
        lateness = start - nominal
        trace.lateness_total += lateness
        trace.lateness_max = max(trace.lateness_max, lateness)
        trace.pes_used.add(pe.pe_id)
        trace.stats.alu_ops += max(op.work, op.execution_time)
        self._max_finish = max(self._max_finish, finish)
        # Consume: free cache slots held by in-edges.
        for edge in self.graph.in_edges(op_id):
            live = (edge.key, iteration)
            if live in state.cache_live:
                state.memory.cache.remove(live)
                del state.cache_live[live]
        self._schedule_event(
            finish, EventTag("produce", op_id, iteration), _PRIO_PRODUCE
        )

    def _emit_transfer(self, transfer: TransferRecord) -> None:
        self.trace.sink.record_transfer(transfer)
        self.trace.num_transfers += 1

    def _produce(self, key: InstanceKey) -> None:
        state = self.state
        trace = self.trace
        op_id, iteration = key
        finish = state.queue.now
        for edge in self.graph.out_edges(op_id):
            consumer_tag = EventTag(
                "arrive", edge.consumer, iteration, edge.key, edge.size_bytes
            )
            placement = self.schedule.placements[edge.key]
            if placement is Placement.CACHE:
                slots = self.config.slots_required(edge.size_bytes)
                if state.memory.cache.fits(slots):
                    state.memory.cache.insert((edge.key, iteration), slots)
                    state.cache_live[(edge.key, iteration)] = slots
                    trace.cache_peak_slots = max(
                        trace.cache_peak_slots, state.memory.cache.used_slots
                    )
                    state.memory.record_cache_transfer(edge.size_bytes)
                    arrival = finish + self.config.cache_transfer_units(
                        edge.size_bytes
                    )
                    self._emit_transfer(TransferRecord(
                        edge.key, iteration, TransferKind.CACHE,
                        edge.size_bytes, finish, arrival,
                    ))
                    self._schedule_event(arrival, consumer_tag, _PRIO_ARRIVE)
                    continue
                trace.cache_spills += 1  # transient overflow: spill
            arrival = self._edram_roundtrip(
                edge.key, edge.size_bytes, finish,
                self.kernel.pe_of(op_id), self.kernel.pe_of(edge.consumer),
            )
            self._emit_transfer(TransferRecord(
                edge.key, iteration, TransferKind.EDRAM,
                edge.size_bytes, finish, arrival,
            ))
            self._schedule_event(arrival, consumer_tag, _PRIO_ARRIVE)

    def _edram_roundtrip(
        self,
        edge_key: EdgeKey,
        size_bytes: int,
        finish: int,
        producer_pe: int,
        consumer_pe: int,
    ) -> int:
        """Prefetch an intermediate result through the stacked memory.

        The producer writes through to its vault while still executing
        (the PIM write path pipelines into production), so the visible
        cost is the consumer-side fetch issued at production time: the
        vault queues and services the access, then the data crosses the
        TSV/crossbar wire -- together exactly the analytic
        ``edram_transfer_units`` when the vault is idle, more under
        contention. The crossbar ports are occupied for the bandwidth
        share of the transfer (not its latency), so independent transfers
        overlap as on real hardware.
        """
        memory = self.state.memory
        crossbar = self.state.crossbar
        vault = memory.vault_for(edge_key)
        if vault.vault_id in self._failed_vaults:
            # The intermediate result's home vault is dead: its eDRAM copy
            # is gone, so neither the write-through nor the prefetch can
            # complete. Surface the fault instead of inventing data.
            self._raise_fault(FAULT_UNIT_VAULT, vault.vault_id)
        latency = self.config.edram_transfer_units(size_bytes)
        service = vault.access_time(size_bytes)
        port_busy = self.config.cache_transfer_units(size_bytes)
        issued, _ = crossbar.transfer(
            consumer_pe, vault.vault_id % crossbar.num_outputs, port_busy,
            finish, size_bytes,
        )
        serviced = vault.read(size_bytes, issued)
        arrival = serviced + max(0, latency - service)
        memory.record_edram_transfer(size_bytes)
        return arrival

    # ------------------------------------------------------------------
    # steady-state machinery
    # ------------------------------------------------------------------
    def _snapshot(self) -> _BoundarySnapshot:
        trace = self.trace
        return _BoundarySnapshot(
            trace_stats=tuple(trace.stats.as_dict().values()),
            memory_stats=tuple(self.state.memory.stats.as_dict().values()),
            cache_spills=trace.cache_spills,
            num_instances=trace.num_instances,
            num_transfers=trace.num_transfers,
            busy_units=trace.busy_units,
            lateness_total=trace.lateness_total,
            events_processed=self.state.queue.processed,
        )

    def _fast_forward(
        self,
        boundary_round: int,
        repetitions: int,
        period_rounds: int,
        current: _BoundarySnapshot,
        previous: _BoundarySnapshot,
    ) -> None:
        """Replay ``repetitions`` converged limit cycles analytically.

        ``previous`` is the snapshot ``period_rounds`` boundaries before
        ``current``; their counter delta covers one full cycle. Counters
        advance by ``repetitions`` times that delta; every absolute
        clock, timestamp and iteration label is spliced forward -- an
        exact translation of the simulation, so the subsequent epilogue
        simulation continues bit-for-bit as if every skipped round had
        been executed.
        """
        state = self.state
        trace = self.trace
        rounds = repetitions * period_rounds
        time_shift = rounds * self.period

        # 1. Counter replay: the converged per-cycle delta, M times.
        stats_keys = list(trace.stats.as_dict())
        for index, name in enumerate(stats_keys):
            delta = current.trace_stats[index] - previous.trace_stats[index]
            setattr(trace.stats, name,
                    getattr(trace.stats, name) + repetitions * delta)
        memory_keys = list(state.memory.stats.as_dict())
        for index, name in enumerate(memory_keys):
            delta = current.memory_stats[index] - previous.memory_stats[index]
            setattr(state.memory.stats, name,
                    getattr(state.memory.stats, name) + repetitions * delta)
        instances_skipped = repetitions * (
            current.num_instances - previous.num_instances
        )
        transfers_skipped = repetitions * (
            current.num_transfers - previous.num_transfers
        )
        trace.cache_spills += repetitions * (
            current.cache_spills - previous.cache_spills
        )
        trace.num_instances += instances_skipped
        trace.num_transfers += transfers_skipped
        trace.busy_units += repetitions * (
            current.busy_units - previous.busy_units
        )
        trace.lateness_total += repetitions * (
            current.lateness_total - previous.lateness_total
        )
        self._events_skipped += repetitions * (
            current.events_processed - previous.events_processed
        )
        self._max_finish += time_shift

        # 2. Timestamp splice: translate the machine and the in-flight
        # event set forward; relabel live iterations.
        state.shift(time_shift, rounds)
        for event in state.queue.clear_pending():
            shifted = event.tag.shifted(rounds)
            self._schedule_event(
                event.time + time_shift, shifted, event.priority
            )
        self._next_iteration += rounds

        # 3. Bookkeeping for observability and the sink.
        trace.converged_round = boundary_round
        trace.converged_period = period_rounds
        # += not =: a run with timed faults may converge, fast-forward to
        # the fault boundary, re-converge on the other side and splice
        # again -- the counter totals every skipped round.
        trace.rounds_fast_forwarded += rounds
        trace.steady_fingerprint = state.fingerprint(
            boundary_round * self.period, boundary_round
        )
        trace.sink.on_fast_forward(FastForwardNotice(
            rounds=rounds,
            time_shift=time_shift,
            iteration_shift=rounds,
            instances_skipped=instances_skipped,
            transfers_skipped=transfers_skipped,
        ))

    # ------------------------------------------------------------------
    # steady-state detection (two-phase)
    # ------------------------------------------------------------------
    def _candidate_period(
        self, boundary_round: int, snapshots: Dict[int, _BoundarySnapshot]
    ) -> Optional[int]:
        """Delegates to the module-level :func:`candidate_period` shared
        with the columnar engine."""
        return candidate_period(
            boundary_round, snapshots, self.max_period, self.r_max
        )

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def execute(self) -> ExecutionTrace:
        state = self.state
        trace = self.trace
        n = self.iterations
        self._events_skipped = 0
        boundary_round = 0
        detecting = (
            self.mode is SimMode.STEADY_STATE and n > self.r_max + 3
        )
        #: recent boundary counters (cheap; pruned to a sliding window).
        snapshots: Dict[int, _BoundarySnapshot] = {}
        #: canonical forms computed during a confirmation phase.
        canonicals: Dict[int, tuple] = {}
        confirm_q: Optional[int] = None
        confirm_from = 0
        failed_confirms = 0

        while state.queue or self._next_iteration <= n:
            boundary_round += 1
            self._current_round = boundary_round
            if self.fault_model is not None and self._update_fault_mask(
                boundary_round
            ):
                # A unit just died. Everything the convergence detector
                # learned describes the healthy(er) machine, so the
                # fingerprint history is invalid across this boundary.
                snapshots.clear()
                canonicals.clear()
                confirm_q = None
                self._converged = False
            if self._next_iteration <= min(boundary_round, n):
                self._materialize(self._next_iteration)
                self._next_iteration += 1
            boundary_time = boundary_round * self.period
            state.queue.run(until=boundary_time - 1)
            trace.rounds_simulated += 1
            if self._round_probe is not None:
                self._round_probe(boundary_round, self._snapshot())
            if not detecting or self._converged or boundary_round > n:
                continue

            # Phase 0 (every boundary, cheap): counter snapshot.
            snapshots[boundary_round] = self._snapshot()
            window = 2 * self.max_period + 2
            snapshots.pop(boundary_round - window, None)

            if confirm_q is not None:
                # Phase 2: exact confirmation of the candidate period.
                canonical = state.canonical(boundary_time, boundary_round)
                canonicals[boundary_round] = canonical
                reference = canonicals.get(boundary_round - confirm_q)
                if reference is not None and canonical == reference:
                    self._converged = True
                    # Never splice across a fault boundary: the converged
                    # fingerprint only describes the machine *between*
                    # faults, so the fast-forward horizon stops one round
                    # short of the next scheduled fault event.
                    horizon = n
                    if self.fault_model is not None:
                        next_fault = self.fault_model.next_event_after(
                            boundary_round
                        )
                        if next_fault is not None:
                            horizon = min(horizon, next_fault - 1)
                    repetitions = max(0, (horizon - boundary_round) // confirm_q)
                    if repetitions > 0:
                        self._fast_forward(
                            boundary_round, repetitions, confirm_q,
                            snapshots[boundary_round],
                            snapshots[boundary_round - confirm_q],
                        )
                        boundary_round += repetitions * confirm_q
                    else:
                        trace.converged_round = boundary_round
                        trace.converged_period = confirm_q
                        trace.steady_fingerprint = state.fingerprint(
                            boundary_time, boundary_round
                        )
                    snapshots.clear()
                    canonicals.clear()
                    confirm_q = None
                elif boundary_round - confirm_from >= 2 * confirm_q:
                    # Two full candidate cycles without an exact match:
                    # the cheap signal was a coincidence.
                    confirm_q = None
                    canonicals.clear()
                    failed_confirms += 1
                    if failed_confirms >= self.confirm_budget:
                        detecting = False  # stop paying for fingerprints
                        snapshots.clear()
            elif boundary_round >= self.r_max + 2:
                # Phase 1: arm a confirmation when deltas look periodic.
                q = self._candidate_period(boundary_round, snapshots)
                if q is not None and n - boundary_round > q:
                    confirm_q = q
                    confirm_from = boundary_round
                    canonicals[boundary_round] = state.canonical(
                        boundary_time, boundary_round
                    )

        executed = trace.num_instances
        expected = self.graph.num_vertices * n
        if executed != expected:
            raise SimulationError(
                f"executed {executed} instances, expected {expected}; "
                "dependency deadlock in the schedule"
            )
        trace.realized_makespan = self._max_finish
        trace.stats = trace.stats.merged_with(state.memory.stats)
        trace.events_processed = state.queue.processed + self._events_skipped
        return trace


def simulate_sparta(
    result: SpartaResult,
    iterations: int = 20,
    num_vaults: int = 16,
    mode: SimMode = SimMode.FULL_UNROLL,
    sink: Optional[TraceSink] = None,
) -> ExecutionTrace:
    """Execute a SPARTA schedule: iterations back-to-back on one group.

    The stalled occupancies are already folded into the kernel, so the
    executor only validates resource feasibility and accumulates traffic:
    every eDRAM-placed in-edge of an operation counts as a demand fetch.

    SPARTA has no cross-iteration machine state at all (each iteration is
    a verbatim repetition of the kernel), so ``STEADY_STATE`` mode emits
    the first iteration's records, then replays the per-iteration stats
    delta ``N - 1`` times -- O(V) for any ``N``.
    """
    if iterations < 1:
        raise SimulationError("iterations must be >= 1")
    mode = SimMode.from_name(mode)
    graph = result.graph
    kernel = result.kernel
    config = result.config
    length = result.iteration_length
    memory = MemorySystem(config, num_vaults=num_vaults)
    trace = ExecutionTrace(
        config=config,
        iterations=iterations,
        analytic_makespan=iterations * length,
        realized_makespan=iterations * length,
        sink=sink if sink is not None else InMemorySink(),
        sim_mode=mode,
    )
    # SPARTA has no columnar machine state to batch, so the columnar
    # modes degenerate to their object twins' replay structure.
    simulated = 1 if mode.detects_steady_state else iterations
    for iteration in range(1, simulated + 1):
        base = (iteration - 1) * length
        for op in graph.operations():
            start = base + kernel.start(op.op_id)
            finish = base + kernel.finish(op.op_id)
            trace.sink.record_instance(InstanceRecord(
                op.op_id, iteration, kernel.pe_of(op.op_id),
                start, start, finish,
            ))
            trace.num_instances += 1
            trace.busy_units += finish - start
            trace.pes_used.add(kernel.pe_of(op.op_id))
            trace.stats.alu_ops += max(op.work, op.execution_time)
        for edge in graph.edges():
            if result.placements[edge.key] is Placement.CACHE:
                memory.record_cache_transfer(edge.size_bytes)
            else:
                memory.record_edram_transfer(edge.size_bytes)
    trace.rounds_simulated = simulated
    if mode.detects_steady_state and iterations > 1:
        skipped = iterations - 1
        per_iteration_instances = trace.num_instances
        for name, value in list(trace.stats.as_dict().items()):
            setattr(trace.stats, name, value * iterations)
        for name, value in list(memory.stats.as_dict().items()):
            setattr(memory.stats, name, value * iterations)
        trace.num_instances *= iterations
        trace.busy_units *= iterations
        trace.converged_round = 1
        trace.converged_period = 1
        trace.rounds_fast_forwarded = skipped
        trace.sink.on_fast_forward(FastForwardNotice(
            rounds=skipped,
            time_shift=skipped * length,
            iteration_shift=skipped,
            instances_skipped=skipped * per_iteration_instances,
            transfers_skipped=0,
        ))
    trace.stats = trace.stats.merged_with(memory.stats)
    return trace
