"""Shim for legacy editable installs (offline environments without wheel).

All project metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-build-isolation`` on toolchains lacking the
``wheel`` package (PEP 517 editable builds require bdist_wheel).
"""

from setuptools import setup

setup()
