"""Benchmark A1: cache-allocation strategy ablation.

Regenerates the design-choice comparison DESIGN.md calls out: the paper's
DP against greedy, random, all-eDRAM, the capacity-oblivious oracle and
the critical-path-aware iterative extension. Asserts the dominance
ordering and the headline finding that the iterative extension reaches a
smaller (never larger) R_max than the profit-maximizing DP.
"""

import pytest

from repro.eval.ablation import render_ablation, run_ablation


@pytest.mark.paper_artifact("ablation")
def test_ablation_full(benchmark, machine, capsys):
    rows = benchmark.pedantic(
        run_ablation, kwargs={"base_config": machine, "pes": 32},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(render_ablation(rows))

    for row in rows:
        cells = row.cells
        # profit dominance: oracle >= dp >= greedy >= random >= all-edram
        assert cells["oracle"].profit >= cells["dp"].profit
        assert cells["dp"].profit >= cells["greedy"].profit
        assert cells["greedy"].profit >= cells["random"].profit
        assert cells["all-edram"].profit == 0
        # R_max dominance: caching can only shorten the prologue
        assert cells["dp"].max_retiming <= cells["all-edram"].max_retiming
        assert cells["oracle"].max_retiming <= cells["dp"].max_retiming
        # the extension targets R_max directly and never loses to the DP
        assert cells["iterative"].max_retiming <= cells["dp"].max_retiming

    # on at least a third of the benchmarks the iterative allocator strictly
    # improves on the paper's DP -- the documented optimality gap
    strict = sum(
        1 for row in rows
        if row.cells["iterative"].max_retiming < row.cells["dp"].max_retiming
    )
    assert strict >= len(rows) // 3
