"""Benchmark F5: regenerate Figure 5 (per-iteration execution time).

The paper normalizes each benchmark's steady-state iteration time by the
baseline's on 64 PEs and shows it decreasing significantly with more
processing engines.
"""

import pytest

from repro.eval.figure5 import render_figure5, run_figure5


@pytest.mark.paper_artifact("figure5")
def test_figure5_full(benchmark, machine, capsys):
    rows = benchmark.pedantic(
        run_figure5, args=(machine,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(render_figure5(rows))

    for row in rows:
        # iteration time decreases monotonically with more PEs
        assert (
            row.iteration_time[64]
            <= row.iteration_time[32]
            <= row.iteration_time[16]
        ), f"{row.benchmark}: iteration time must fall with PE count"
        # and Para-CONV at 64 PEs beats the 64-PE baseline
        assert row.normalized(64) < 1.0

    # aggregate factor: 16 -> 64 PEs buys a substantial reduction
    ratios = [
        row.iteration_time[16] / row.iteration_time[64]
        for row in rows
        if row.iteration_time[64] > 0
    ]
    assert sum(ratios) / len(ratios) > 2.0
