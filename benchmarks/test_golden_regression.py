"""Golden-artifact regression: today's results vs the committed baseline.

`benchmarks/golden/` holds JSON artifacts of the shipped Table 1 / Table 2
results (the numbers EXPERIMENTS.md quotes). This benchmark re-runs the
experiments and diffs them against the golden files: any drift means a
model change silently altered the reproduction's published record.

Regenerate the golden files intentionally with::

    python -c "from benchmarks.test_golden_regression import regenerate; regenerate()"
"""

from pathlib import Path

import pytest

from repro.eval.artifacts import diff_artifacts, load_artifact, save_artifact
from repro.eval.table1 import run_table1
from repro.eval.table2 import run_table2
from repro.pim.config import PimConfig

GOLDEN = Path(__file__).parent / "golden"
CONFIG = PimConfig()


def regenerate() -> None:
    """Overwrite the golden artifacts with freshly measured results."""
    GOLDEN.mkdir(exist_ok=True)
    save_artifact("table1", run_table1(CONFIG), CONFIG, GOLDEN / "table1.json")
    save_artifact("table2", run_table2(CONFIG), CONFIG, GOLDEN / "table2.json")


def _fresh_artifact(experiment, runner, tmp_path):
    path = tmp_path / f"{experiment}.json"
    save_artifact(experiment, runner(CONFIG), CONFIG, path)
    return load_artifact(path)


@pytest.mark.paper_artifact("regression")
def test_table1_matches_golden(benchmark, tmp_path):
    golden = load_artifact(GOLDEN / "table1.json")
    fresh = benchmark.pedantic(
        _fresh_artifact, args=("table1", run_table1, tmp_path),
        rounds=1, iterations=1,
    )
    drift = diff_artifacts(golden, fresh, tolerance=0.0)
    assert drift == [], "Table 1 drifted from the published record:\n" + "\n".join(
        drift[:20]
    )


@pytest.mark.paper_artifact("regression")
def test_table2_matches_golden(benchmark, tmp_path):
    golden = load_artifact(GOLDEN / "table2.json")
    fresh = benchmark.pedantic(
        _fresh_artifact, args=("table2", run_table2, tmp_path),
        rounds=1, iterations=1,
    )
    drift = diff_artifacts(golden, fresh, tolerance=0.0)
    assert drift == [], "Table 2 drifted from the published record:\n" + "\n".join(
        drift[:20]
    )
