"""Benchmark A2: discrete-event execution vs the analytic model.

Executes Para-CONV schedules on the stateful machine model and asserts
the analytic schedule lengths the tables report are achieved on the
simulated hardware (slowdown 1.0, bounded lateness).
"""

import pytest

from repro.eval.validation import render_validation, run_validation


@pytest.mark.paper_artifact("validation")
def test_simulation_validates_analytic_model(benchmark, machine, capsys):
    rows = benchmark.pedantic(
        run_validation,
        kwargs={"base_config": machine, "pes": 32, "iterations": 20},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(render_validation(rows))

    for row in rows:
        assert row.slowdown == pytest.approx(1.0, abs=0.05), (
            f"{row.benchmark}: simulated machine diverged from the model"
        )
        # lateness never cascades into a different steady state
        assert row.max_lateness <= row.analytic * 0.05 + 20
        assert 0.0 < row.pe_utilization <= 1.0
