"""Benchmark A10: columnar sim engine vs the object full unroll.

The columnar engine (:class:`~repro.sim.columnar.ColumnarRun`) executes
the same event-by-event round semantics as the object machine but keeps
PE/vault/crossbar timelines in flat arrays and dispatches heap tuples
directly, skipping per-event object construction. It must be a *perfect*
stand-in: the aggregate signature is compared to the full unroll
unconditionally, and the steady-detecting variant must converge at the
same round, period and fingerprint as the object steady engine
(``tests/sim/test_columnar_rounds.py`` additionally proves per-round
counter equality through the ``round_probe`` hook).

The wall-time floor (>= 2x vs the object full unroll on the LeNet-5
partition at 64 PEs, paper-scale N) is enforced only under
``REPRO_ENFORCE_SIM_SPEEDUP=1`` (CI's sim-perf job), which also
refreshes the committed ``BENCH_sim.json`` trajectory file.
"""

import os
import time
from pathlib import Path

import pytest

from repro.cnn.workloads import load_workload
from repro.core.paraconv import ParaConv
from repro.eval.bench_io import dump_bench, new_report
from repro.pim.config import PimConfig
from repro.sim.executor import ScheduleExecutor
from repro.sim.modes import SimMode
from repro.sim.sinks import NullSink

#: The widest PE configuration the evaluation sweeps (Section 4.1).
WIDEST_PES = 64

#: The paper's steady-state iteration count.
ITERATIONS = 1000

#: Median-of-N timing keeps the ratio stable on noisy CI hosts.
TIMING_REPEATS = 5

#: The committed speedup floor (ISSUE acceptance: >= 2x full-mode rounds).
SPEEDUP_FLOOR = 2.0

#: Where the trajectory file lands (repo root; CI uploads it).
BENCH_PATH = Path(
    os.environ.get("REPRO_BENCH_DIR", Path(__file__).resolve().parents[1])
) / "BENCH_sim.json"


@pytest.fixture(scope="module")
def sim_machine() -> PimConfig:
    return PimConfig(num_pes=WIDEST_PES, iterations=ITERATIONS)


@pytest.fixture(scope="module")
def plan(sim_machine):
    return ParaConv(sim_machine).run(load_workload("lenet5"))


def _execute(sim_machine, plan, mode, iterations=ITERATIONS):
    executor = ScheduleExecutor(sim_machine, mode=mode)
    return executor.execute(plan, iterations=iterations, sink=NullSink())


def _median_execute_seconds(sim_machine, plan, mode) -> float:
    samples = []
    for _ in range(TIMING_REPEATS):
        started = time.perf_counter()
        _execute(sim_machine, plan, mode)
        samples.append(time.perf_counter() - started)
    samples.sort()
    return samples[len(samples) // 2]


@pytest.mark.paper_artifact("columnar-sim")
def test_columnar_signature_matches_full_unroll(sim_machine, plan):
    """Every aggregate of the columnar run equals the object oracle."""
    full = _execute(sim_machine, plan, SimMode.FULL_UNROLL)
    columnar = _execute(sim_machine, plan, SimMode.COLUMNAR)
    assert columnar.aggregate_signature() == full.aggregate_signature()


@pytest.mark.paper_artifact("columnar-sim")
def test_columnar_steady_convergence_matches_object_steady(sim_machine, plan):
    """Round/period/fingerprint equality is a cross-implementation check
    of the convergence rule itself (the canonical forms are computed from
    different machine representations)."""
    steady = _execute(sim_machine, plan, SimMode.STEADY_STATE)
    columnar = _execute(sim_machine, plan, SimMode.COLUMNAR_STEADY)
    assert columnar.aggregate_signature() == steady.aggregate_signature()
    assert columnar.converged_round == steady.converged_round
    assert columnar.converged_period == steady.converged_period
    assert columnar.rounds_fast_forwarded == steady.rounds_fast_forwarded
    assert columnar.steady_fingerprint == steady.steady_fingerprint


@pytest.mark.paper_artifact("columnar-sim")
def test_columnar_speedup(sim_machine, plan, capsys):
    """Median wall time of all four engines at the paper's N.

    Always measured, printed and written to ``BENCH_sim.json``; the
    >= 2x columnar-vs-full floor is asserted only under
    ``REPRO_ENFORCE_SIM_SPEEDUP=1``.
    """
    timings = {
        mode.value: _median_execute_seconds(sim_machine, plan, mode)
        for mode in (
            SimMode.FULL_UNROLL,
            SimMode.COLUMNAR,
            SimMode.STEADY_STATE,
            SimMode.COLUMNAR_STEADY,
        )
    }
    speedup = timings["full"] / timings["columnar"]

    report = new_report("sim", {
        "workload": "lenet5",
        "num_pes": WIDEST_PES,
        "iterations": ITERATIONS,
        "num_vertices": plan.graph.num_vertices,
        "timing_repeats": TIMING_REPEATS,
        "speedup_floor": SPEEDUP_FLOOR,
        "floor_enforced": bool(os.environ.get("REPRO_ENFORCE_SIM_SPEEDUP")),
        "seconds": timings,
        "speedups_vs_full": {
            mode: timings["full"] / seconds
            for mode, seconds in timings.items()
            if mode != "full"
        },
    })
    dump_bench(BENCH_PATH, report)

    with capsys.disabled():
        print()
        print(
            f"simulation, lenet5 @ {WIDEST_PES} PEs, N={ITERATIONS}: "
            f"columnar {timings['columnar'] * 1e3:.2f} ms, "
            f"full {timings['full'] * 1e3:.2f} ms, "
            f"speedup {speedup:.1f}x "
            f"(trajectory -> {BENCH_PATH.name})"
        )

    if os.environ.get("REPRO_ENFORCE_SIM_SPEEDUP"):
        assert speedup >= SPEEDUP_FLOOR, (
            f"columnar sim engine regressed: {speedup:.2f}x < the "
            f"committed {SPEEDUP_FLOOR}x floor "
            f"(columnar {timings['columnar'] * 1e3:.2f} ms vs full "
            f"{timings['full'] * 1e3:.2f} ms at N={ITERATIONS})"
        )
