"""Benchmark A9: columnar anneal scoring vs the object re-walk.

The annealing allocator's inner loop scores candidate cache subsets.
Pre-columnar, each score re-walked ``problem.items`` (kept as
:func:`repro.core.profit.score_masks_object`, the differential oracle
and timing baseline); the columnar :class:`~repro.core.profit.ProfitTable`
scores a whole batch with two ``int64`` matrix-vector products.

Bit-identity is asserted unconditionally — per-candidate scores, the
final allocation and every :class:`~repro.core.search.SearchStats`
counter must match the object engine exactly (the RNG draw sequence is
shared, so the two walks visit identical states). The wall-time floor
(>= 3x on a batch of >= 2000 candidates, the default anneal budget) is
enforced only under ``REPRO_ENFORCE_COMPILE_SPEEDUP=1`` (CI's
compile-perf job), which also refreshes the committed
``BENCH_compile.json`` trajectory file.
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cnn.workloads import load_workload
from repro.core.profit import ProfitTable, score_masks_object
from repro.core.search import DEFAULT_SEARCH_BUDGET, AnnealAllocator
from repro.eval.bench_io import dump_bench, new_report
from repro.pim.config import PimConfig
from repro.verify.differential_search import allocation_instance

#: The widest PE configuration the evaluation sweeps (Section 4.1).
WIDEST_PES = 64

#: Scored candidates per timing batch — the ISSUE floor applies at the
#: default anneal budget and above.
NUM_CANDIDATES = max(2000, DEFAULT_SEARCH_BUDGET)

#: Median-of-N timing keeps the ratio stable on noisy CI hosts.
TIMING_REPEATS = 9

#: The committed speedup floor (ISSUE acceptance: >= 3x batch scoring).
SPEEDUP_FLOOR = 3.0

#: Where the trajectory file lands (repo root; CI uploads it).
BENCH_PATH = Path(
    os.environ.get("REPRO_BENCH_DIR", Path(__file__).resolve().parents[1])
) / "BENCH_compile.json"


@pytest.fixture(scope="module")
def compile_machine() -> PimConfig:
    return PimConfig(num_pes=WIDEST_PES, iterations=1000)


@pytest.fixture(scope="module")
def problem(compile_machine):
    instance, _width = allocation_instance(
        load_workload("lenet5"), compile_machine
    )
    return instance


@pytest.fixture(scope="module")
def candidate_masks(problem):
    """A seeded batch of random candidate subsets (the anneal's shape)."""
    rng = np.random.default_rng(0)
    n = len(problem.items)
    assert n > 0, "lenet5 instance must expose movable items"
    return rng.integers(0, 2, size=(NUM_CANDIDATES, n), dtype=np.int64) > 0


def _median_seconds(fn) -> float:
    samples = []
    for _ in range(TIMING_REPEATS):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    samples.sort()
    return samples[len(samples) // 2]


@pytest.mark.paper_artifact("columnar-compile")
def test_batch_scores_are_bit_identical(problem, candidate_masks):
    """Columnar scoring equals the object re-walk on every candidate."""
    table = ProfitTable.of(problem)
    profits, slots = table.score_masks(candidate_masks)
    reference = score_masks_object(problem, candidate_masks)
    assert [
        (int(p), int(s)) for p, s in zip(profits, slots)
    ] == reference


@pytest.mark.paper_artifact("columnar-compile")
def test_anneal_engines_are_bit_identical(problem):
    """Both anneal engines produce the same allocation AND SearchStats."""
    columnar = AnnealAllocator(seed=7, engine="columnar")(problem)
    objectful = AnnealAllocator(seed=7, engine="object")(problem)
    assert columnar.placements == objectful.placements
    assert columnar.cached == objectful.cached
    assert columnar.total_delta_r == objectful.total_delta_r
    assert columnar.slots_used == objectful.slots_used
    assert (
        columnar.search_stats.as_dict() == objectful.search_stats.as_dict()
    )


@pytest.mark.paper_artifact("columnar-compile")
def test_columnar_scoring_speedup(problem, candidate_masks, capsys):
    """Median wall time, columnar batch scoring vs the object re-walk.

    Always measured, printed and written to ``BENCH_compile.json``; the
    >= 3x floor is asserted only under ``REPRO_ENFORCE_COMPILE_SPEEDUP=1``.
    """
    table = ProfitTable.of(problem)
    columnar_s = _median_seconds(lambda: table.score_masks(candidate_masks))
    object_s = _median_seconds(
        lambda: score_masks_object(problem, candidate_masks)
    )
    scoring_speedup = object_s / columnar_s

    anneal_columnar_s = _median_seconds(
        lambda: AnnealAllocator(seed=7, engine="columnar")(problem)
    )
    anneal_object_s = _median_seconds(
        lambda: AnnealAllocator(seed=7, engine="object")(problem)
    )

    report = new_report("compile", {
        "workload": "lenet5",
        "num_pes": WIDEST_PES,
        "num_items": len(problem.items),
        "capacity_slots": problem.capacity_slots,
        "num_candidates": NUM_CANDIDATES,
        "timing_repeats": TIMING_REPEATS,
        "speedup_floor": SPEEDUP_FLOOR,
        "floor_enforced": bool(
            os.environ.get("REPRO_ENFORCE_COMPILE_SPEEDUP")
        ),
        "scoring": {
            "columnar_seconds": columnar_s,
            "object_seconds": object_s,
            "speedup": scoring_speedup,
        },
        "anneal_walk": {
            "budget": DEFAULT_SEARCH_BUDGET,
            "columnar_seconds": anneal_columnar_s,
            "object_seconds": anneal_object_s,
            "speedup": anneal_object_s / anneal_columnar_s,
        },
    })
    dump_bench(BENCH_PATH, report)

    with capsys.disabled():
        print()
        print(
            f"anneal scoring, lenet5 @ {WIDEST_PES} PEs, "
            f"{NUM_CANDIDATES} candidates: "
            f"columnar {columnar_s * 1e3:.3f} ms, "
            f"object {object_s * 1e3:.3f} ms, "
            f"speedup {scoring_speedup:.1f}x "
            f"(trajectory -> {BENCH_PATH.name})"
        )

    if os.environ.get("REPRO_ENFORCE_COMPILE_SPEEDUP"):
        assert scoring_speedup >= SPEEDUP_FLOOR, (
            f"columnar anneal scoring regressed: {scoring_speedup:.2f}x "
            f"< the committed {SPEEDUP_FLOOR}x floor "
            f"(columnar {columnar_s * 1e3:.3f} ms vs object "
            f"{object_s * 1e3:.3f} ms on {NUM_CANDIDATES} candidates)"
        )
