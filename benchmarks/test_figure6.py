"""Benchmark F6: regenerate Figure 6 (cached intermediate results).

The paper counts intermediate results placed in the on-chip cache per PE
configuration: counts grow from 16 to 32 PEs for most benchmarks and
saturate from 32 to 64 because the workloads rarely keep more than about
thirty results in flight -- the cached count is ceilinged by the
placement-sensitive ("competing") edge population.
"""

import pytest

from repro.eval.figure6 import render_figure6, run_figure6


@pytest.mark.paper_artifact("figure6")
def test_figure6_full(benchmark, machine, capsys):
    rows = benchmark.pedantic(
        run_figure6, args=(machine,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(render_figure6(rows))

    for row in rows:
        for pes in (16, 32, 64):
            assert 0 <= row.cached_per_group[pes] <= row.competing[pes]

    # the small benchmarks saturate: capacity beyond 32 PEs buys nothing
    by_name = {row.benchmark: row for row in rows}
    saturated = [
        name for name in ("cat", "car", "flower")
        if by_name[name].saturated(32, 64)
    ]
    assert len(saturated) >= 2

    # the large benchmarks are capacity-bound: more PEs -> more cached
    for name in ("speech-2", "protein"):
        row = by_name[name]
        assert row.cached_per_group[64] >= row.cached_per_group[16]
