"""Benchmark A4: cross-architecture generality (paper Section 5).

Runs the unchanged pipeline on four PIM design points and asserts the
comparative shapes: Para-CONV wins everywhere, and the margin tracks the
architecture's off-PE penalty.
"""

import pytest

from repro.eval.architectures import (
    average_improvement_by_architecture,
    render_architectures,
    run_architectures,
)


@pytest.mark.paper_artifact("architectures")
def test_cross_architecture_study(benchmark, capsys):
    rows = benchmark.pedantic(
        run_architectures, kwargs={"num_pes": 32}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(render_architectures(rows))

    for row in rows:
        assert row.improvement_percent > 0
    averages = average_improvement_by_architecture(rows)
    assert averages["edge_pim"] > averages["neurocube"]
    assert averages["eyeriss_like"] > averages["rram_pim"]
    # the win is substantial on every design point
    assert min(averages.values()) > 35.0
