"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one of the paper's evaluation artifacts
(tables 1-2, figures 5-6) or one of the reproduction's own experiments
(ablation, simulator validation, energy, DP scaling). pytest-benchmark
times the harness while the assertions pin the qualitative shapes.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.pim.config import PimConfig


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_artifact(name): maps a benchmark to a paper artifact"
    )


@pytest.fixture(scope="session")
def machine() -> PimConfig:
    """The evaluation machine (Section 4.1 defaults, N = 1000)."""
    return PimConfig(iterations=1000)


@pytest.fixture(scope="session")
def quick_machine() -> PimConfig:
    """Shorter runs for per-call micro benchmarks."""
    return PimConfig(iterations=200)
