"""Benchmark A8: simulation latency — steady-state engine vs full unroll.

The steady-state engine fingerprints the simulated machine at round
boundaries and, once the fingerprint recurs, fast-forwards the remaining
converged rounds in O(1) (counters advance by the measured per-cycle
delta, the machine state and pending events shift uniformly in time).
At the paper's ``N = 1000`` on the LeNet-5 partition at 64 PEs the run
converges within a handful of rounds, so nearly the whole horizon is
spliced and the simulation costs roughly the transient.

Mirrors ``benchmarks/test_compile.py``: equivalence and convergence
checks always run (fast-forward must never change any aggregate), while
the wall-time ratio is only asserted on hosts that opt in via
``REPRO_ENFORCE_SIM_SPEEDUP=1`` (CI's sim-latency smoke step).
"""

import os
import time

import pytest

from repro.cnn.workloads import load_workload
from repro.core.paraconv import ParaConv
from repro.pim.config import PimConfig
from repro.sim.executor import ScheduleExecutor
from repro.sim.modes import SimMode
from repro.sim.sinks import CountingSink, NullSink, RingBufferSink

#: The widest PE configuration the evaluation sweeps (Section 4.1).
WIDEST_PES = 64

#: The paper's steady-state iteration count.
ITERATIONS = 1000

#: Median-of-N timing keeps the ratio stable on noisy CI hosts.
TIMING_REPEATS = 7

#: The committed speedup floor (ISSUE acceptance: >= 2x in CI; measured
#: speedups on converging workloads are far higher).
SPEEDUP_FLOOR = 2.0


@pytest.fixture(scope="module")
def sim_machine() -> PimConfig:
    return PimConfig(num_pes=WIDEST_PES, iterations=ITERATIONS)


@pytest.fixture(scope="module")
def plan(sim_machine):
    return ParaConv(sim_machine).run(load_workload("lenet5"))


def _median_execute_seconds(sim_machine, plan, mode) -> float:
    samples = []
    for _ in range(TIMING_REPEATS):
        executor = ScheduleExecutor(sim_machine, mode=mode)
        started = time.perf_counter()
        executor.execute(plan, iterations=ITERATIONS, sink=NullSink())
        samples.append(time.perf_counter() - started)
    samples.sort()
    return samples[len(samples) // 2]


@pytest.mark.paper_artifact("sim-latency")
def test_fast_forward_preserves_every_aggregate(sim_machine, plan):
    """Steady-state and full-unroll signatures are identical at N=1000."""
    full = ScheduleExecutor(sim_machine, mode=SimMode.FULL_UNROLL).execute(
        plan, iterations=ITERATIONS, sink=NullSink()
    )
    steady = ScheduleExecutor(sim_machine, mode=SimMode.STEADY_STATE).execute(
        plan, iterations=ITERATIONS, sink=NullSink()
    )
    assert steady.aggregate_signature() == full.aggregate_signature()


@pytest.mark.paper_artifact("sim-latency")
def test_fast_forward_actually_engages(sim_machine, plan):
    """Convergence happens within the transient — this is where the
    speedup comes from: nearly the whole horizon is spliced."""
    steady = ScheduleExecutor(sim_machine, mode=SimMode.STEADY_STATE).execute(
        plan, iterations=ITERATIONS, sink=NullSink()
    )
    assert steady.converged_round is not None
    assert steady.converged_period is not None
    assert steady.rounds_fast_forwarded >= ITERATIONS * 9 // 10
    assert steady.steady_fingerprint is not None


@pytest.mark.paper_artifact("sim-latency")
def test_trace_memory_stays_bounded(sim_machine, plan):
    """Bounded sinks keep O(k) records at paper-scale N while the
    aggregates still account for every instance."""
    ring = RingBufferSink(capacity=128)
    trace = ScheduleExecutor(sim_machine, mode=SimMode.STEADY_STATE).execute(
        plan, iterations=ITERATIONS, sink=ring
    )
    assert trace.num_instances == plan.graph.num_vertices * ITERATIONS
    assert len(trace.records) <= 128
    assert len(trace.transfers) <= 128

    counting = CountingSink()
    ScheduleExecutor(sim_machine, mode=SimMode.STEADY_STATE).execute(
        plan, iterations=ITERATIONS, sink=counting
    )
    assert counting.instances_total == plan.graph.num_vertices * ITERATIONS
    assert counting.fast_forwards >= 1


@pytest.mark.paper_artifact("sim-latency")
def test_steady_state_speedup(sim_machine, plan, capsys):
    """Median wall time, steady vs full unroll, at the paper's N.

    Always measured and printed; the >= 2x floor is asserted only under
    ``REPRO_ENFORCE_SIM_SPEEDUP=1``.
    """
    steady_s = _median_execute_seconds(sim_machine, plan, SimMode.STEADY_STATE)
    full_s = _median_execute_seconds(sim_machine, plan, SimMode.FULL_UNROLL)
    speedup = full_s / steady_s

    with capsys.disabled():
        print()
        print(
            f"simulation, lenet5 @ {WIDEST_PES} PEs, N={ITERATIONS}: "
            f"steady {steady_s * 1e3:.2f} ms, "
            f"full {full_s * 1e3:.2f} ms, "
            f"speedup {speedup:.1f}x"
        )

    if os.environ.get("REPRO_ENFORCE_SIM_SPEEDUP"):
        assert speedup >= SPEEDUP_FLOOR, (
            f"steady-state engine only {speedup:.2f}x faster than the full "
            f"unroll (floor {SPEEDUP_FLOOR}x): steady {steady_s * 1e3:.2f} ms "
            f"vs full {full_s * 1e3:.2f} ms"
        )


@pytest.mark.paper_artifact("sim-latency")
def test_steady_execute_wall_time(benchmark, sim_machine, plan):
    """pytest-benchmark timing of the production (steady) engine."""
    trace = benchmark.pedantic(
        lambda: ScheduleExecutor(
            sim_machine, mode=SimMode.STEADY_STATE
        ).execute(plan, iterations=ITERATIONS, sink=NullSink()),
        rounds=5,
        iterations=1,
    )
    assert trace.rounds_fast_forwarded > 0
