"""Benchmark: fleet serving tier — throughput, failover, SLO latency.

A small sharded fleet (4 workers over a 64-PE machine) serves a
deterministic Poisson trace through the plan-affinity router. The smoke
assertions (0 lost requests across a mid-run worker kill, exactly one
compile per workload fleet-wide) always run; the p99 latency floor for
the interactive SLO class is only enforced under
``REPRO_ENFORCE_FLEET_SLO=1`` (CI's fleet smoke step) because latency
is expressed in virtual time units and the floor is a contract on the
simulated queueing model, not on host wall time.

The full-scale run (``python -m repro.fleet bench`` with >= 1M
requests) is exercised by CI as an artifact step; this module keeps the
request count small enough for the tier-1 suite.
"""

import os

import pytest

from repro.fleet import (
    FleetLoadGenerator,
    FleetRouter,
    FleetWorker,
    SharedPlanStore,
    run_bench,
)
from repro.graph.generators import synthetic_benchmark
from repro.pim.config import PimConfig

#: Steady-state-converging workloads: O(1) batch cost in the simulator.
WORKLOADS = ("flower", "speech-2", "stock-predict", "string-matching")

NUM_WORKERS = 4
NUM_REQUESTS = 10_000

#: Virtual-time p99 ceiling for the interactive class under the default
#: Poisson load (mean interarrival 8 units, batch window 64). The bound
#: is loose (~4x observed) so host-independent determinism, not timing
#: noise, is the only thing that can trip it.
INTERACTIVE_P99_CEILING_UNITS = 2_000_000


def _build_router(store_dir, batch_window=64, max_queue=50_000):
    store = SharedPlanStore(store_dir)
    shards = PimConfig(num_pes=64).split(NUM_WORKERS, num_vaults=32)
    workers = [
        FleetWorker(
            f"worker-{index}",
            shard,
            store=store,
            batch_window=batch_window,
            max_queue=max_queue,
            graph_loader=synthetic_benchmark,
        )
        for index, shard in enumerate(shards)
    ]
    return FleetRouter(workers, graph_loader=synthetic_benchmark)


@pytest.fixture(scope="module")
def bench_report(tmp_path_factory):
    router = _build_router(tmp_path_factory.mktemp("fleet-store"))
    generator = FleetLoadGenerator(list(WORKLOADS), seed=0)
    return run_bench(
        router,
        generator,
        num_requests=NUM_REQUESTS,
        kill_worker_id=f"worker-{NUM_WORKERS - 1}",
        pump_every=512,
    )


@pytest.mark.paper_artifact("fleet-serving")
def test_fleet_smoke_zero_lost_across_kill(bench_report):
    """10k requests, one worker killed mid-run: every admitted request
    is served or deliberately shed — none lost."""
    accounting = bench_report["accounting"]
    assert accounting["lost"] == 0
    assert accounting["served"] == NUM_REQUESTS
    assert accounting["workers_lost"] == 1
    assert bench_report["rerouted_on_kill"] >= 0
    assert bench_report["live_workers"] == NUM_WORKERS - 1


@pytest.mark.paper_artifact("fleet-serving")
def test_fleet_compiles_once_per_workload(bench_report):
    """Plan-affinity routing + the shared store: 10k requests cost
    exactly one compile per distinct workload, fleet-wide. (Sessions
    are cached per workload, so total cache traffic is one lookup per
    worker/workload pair — the invariant is the compile count, not the
    raw hit rate.)"""
    cache = bench_report["cache"]
    assert cache["misses"] == len(WORKLOADS)
    assert cache["disk_writes"] == len(WORKLOADS)
    # Workloads owned by the killed worker re-home as disk hits, never
    # as recompiles.
    assert cache["hits"] == cache["disk_hits"]


@pytest.mark.paper_artifact("fleet-serving")
def test_fleet_slo_percentiles(bench_report, capsys):
    """Per-class latency percentiles are always reported; the
    interactive p99 ceiling is asserted only under
    ``REPRO_ENFORCE_FLEET_SLO=1``."""
    latency = bench_report["latency_units"]
    with capsys.disabled():
        print()
        for label in ("interactive", "standard", "batch", "overall"):
            stats = latency[label]
            print(
                f"fleet {label}: n={stats['count']} "
                f"p50={stats['p50']} p95={stats['p95']} p99={stats['p99']}"
            )
    assert latency["overall"]["count"] == NUM_REQUESTS
    for label in ("interactive", "standard", "batch"):
        assert latency[label]["count"] > 0

    if os.environ.get("REPRO_ENFORCE_FLEET_SLO"):
        p99 = latency["interactive"]["p99"]
        assert p99 <= INTERACTIVE_P99_CEILING_UNITS, (
            f"interactive p99 {p99} virtual units exceeds the "
            f"{INTERACTIVE_P99_CEILING_UNITS}-unit ceiling"
        )


@pytest.mark.paper_artifact("fleet-serving")
def test_fleet_bench_is_deterministic(tmp_path):
    """The same seed replays to identical latency distributions."""
    reports = []
    for run in range(2):
        router = _build_router(tmp_path / f"s{run}")
        reports.append(
            run_bench(
                router,
                FleetLoadGenerator(list(WORKLOADS), seed=7),
                num_requests=2_000,
                kill_worker_id="worker-1",
                pump_every=256,
            )
        )
    assert reports[0]["latency_units"] == reports[1]["latency_units"]
    assert reports[0]["accounting"] == reports[1]["accounting"]
