"""Benchmark A3: data-movement energy extension (the paper's future work).

Prices per-iteration intermediate-result traffic under the machine's
cache/eDRAM energy ratio for Para-CONV, the no-cache floor and SPARTA.
"""

import pytest

from repro.eval.energy import render_energy, run_energy


@pytest.mark.paper_artifact("energy")
def test_energy_accounting(benchmark, machine, capsys):
    rows = benchmark.pedantic(
        run_energy, kwargs={"base_config": machine, "pes": 32},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(render_energy(rows))

    for row in rows:
        # caching can only remove off-chip traffic
        assert row.paraconv_pj <= row.all_edram_pj
        assert row.saving_vs_no_cache >= 0.0
    # at least some benchmarks see a real saving
    assert any(row.saving_vs_no_cache > 0.01 for row in rows)
