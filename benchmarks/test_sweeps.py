"""Benchmark: sensitivity sweeps (machine-parameter robustness).

Checks the comparison's conclusions hold across the paper's stated
parameter envelopes: vault latency 2-10x and the 100-300 KB cache band.
"""


from repro.eval.sweep import (
    render_sweep,
    sweep_cache_capacity,
    sweep_edram_factor,
    sweep_graph_scale,
)


def test_edram_factor_sweep(benchmark, quick_machine, capsys):
    points = benchmark.pedantic(
        sweep_edram_factor,
        kwargs={"graph_name": "shortest-path", "config": quick_machine},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(render_sweep(points, "eDRAM factor", "Sensitivity: vault latency"))
    # Para-CONV wins across the paper's whole 2-10x envelope
    for point in points:
        assert point.improvement_percent > 0


def test_cache_capacity_sweep(benchmark, quick_machine, capsys):
    points = benchmark.pedantic(
        sweep_cache_capacity,
        kwargs={"graph_name": "shortest-path", "config": quick_machine},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(render_sweep(points, "bytes/PE", "Sensitivity: cache capacity"))
    # more cache never slows Para-CONV down (the operating point may
    # change, so the cached census itself is not monotone)
    times = [p.paraconv_time for p in points]
    assert times == sorted(times, reverse=True)
    assert all(p.num_cached > 0 for p in points if p.knob > 0)


def test_graph_scale_sweep(benchmark, quick_machine, capsys):
    points = benchmark.pedantic(
        sweep_graph_scale,
        kwargs={"sizes": (50, 100, 200, 400, 800), "config": quick_machine},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(render_sweep(points, "|V|", "Scalability: synthetic graphs"))
    for point in points:
        assert point.improvement_percent > 0
