"""Benchmark A6: frame-latency vs throughput trade-off (extension).

Quantifies what the paper leaves unreported: retiming pipelines each frame
over R_max + 1 rounds, so per-frame latency grows even as throughput
roughly doubles. Downstream adopters of Para-CONV need both numbers.
"""

import pytest

from repro.eval.latency import render_latency, run_latency


@pytest.mark.paper_artifact("latency")
def test_latency_throughput_tradeoff(benchmark, machine, capsys):
    rows = benchmark.pedantic(
        run_latency, kwargs={"base_config": machine, "pes": 32},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(render_latency(rows))

    for row in rows:
        # the headline improvement is real on the throughput axis...
        assert row.throughput_ratio > 1.5
    # ...but retiming is not free: most workloads pay per-frame latency
    paying = sum(1 for row in rows if row.latency_ratio > 1.0)
    assert paying >= len(rows) // 2
