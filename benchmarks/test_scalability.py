"""Scalability micro-benchmarks: runtime of the pipeline's own algorithms.

The paper's evaluation includes synthetic graphs with over 500
convolutions; these benchmarks time the dynamic program, the retiming
propagation and the full pipeline as graph size grows, checking the
advertised complexity (DP is O(n * S); propagation is O(V + E)).
"""

import pytest

from repro.core.allocation import AllocationProblem, dp_allocate
from repro.core.paraconv import ParaConv
from repro.core.retiming import analyze_edges, solve_retiming
from repro.core.scheduler import compact_kernel_schedule
from repro.graph.generators import SyntheticGraphGenerator, synthetic_benchmark


@pytest.fixture(scope="module")
def big_graph():
    """A synthetic graph beyond the paper's largest (546 vertices)."""
    return SyntheticGraphGenerator().generate(800, 2100, seed=42, name="big")


def test_pipeline_on_protein(benchmark, quick_machine):
    graph = synthetic_benchmark("protein")
    result = benchmark(lambda: ParaConv(quick_machine).run(graph))
    assert result.total_time() > 0


def test_pipeline_on_800_vertices(benchmark, quick_machine, big_graph):
    result = benchmark.pedantic(
        lambda: ParaConv(quick_machine).run(big_graph), rounds=2, iterations=1
    )
    assert result.max_retiming >= 0


def test_dp_allocation_scaling(benchmark, quick_machine, big_graph):
    config = quick_machine.with_pes(64)
    kernel = compact_kernel_schedule(big_graph, 64)
    timings = analyze_edges(big_graph, kernel, config)
    problem = AllocationProblem.from_timings(timings, config.total_cache_slots)
    result = benchmark(lambda: dp_allocate(problem))
    assert result.slots_used <= config.total_cache_slots


def test_retiming_propagation_scaling(benchmark, quick_machine, big_graph):
    config = quick_machine.with_pes(64)
    kernel = compact_kernel_schedule(big_graph, 64)
    timings = analyze_edges(big_graph, kernel, config)
    deltas = {key: t.delta_edram for key, t in timings.items()}
    solution = benchmark(lambda: solve_retiming(big_graph, deltas))
    assert solution.max_retiming >= 0


def test_kernel_compaction_scaling(benchmark, big_graph):
    kernel = benchmark(lambda: compact_kernel_schedule(big_graph, 64))
    assert kernel.period > 0
