"""Benchmark A7: compile latency — pruned vs exhaustive width search.

The pass-based compiler (PR 3) prunes width candidates whose admissible
lower bound — the max of the load-balance and transfer-critical-path
terms (:func:`repro.compiler.width_lower_bound`) — cannot beat the
incumbent best. The latency-oriented regime is where the second term
bites: at ``N = 1`` on the widest array every candidate's total is pure
``(R_max + 1) * p``, narrow groups stretch the transfer clamp on every
edge, and their dependence chains alone already exceed a wide incumbent's
total. On the LeNet-5 partition at 64 PEs the search prunes 13 of 14
candidates and compiles ~6x faster than the exhaustive baseline.

The speedup assertion is env-gated (``REPRO_ENFORCE_COMPILE_SPEEDUP=1``)
so that plan-identity and pruning-count checks always run while wall-time
ratios are only enforced on hosts that opt in (CI's compile-latency smoke
step); the plan-equivalence assertions are unconditional because pruning
must never change the produced plan.
"""

import os
import time

import pytest

from repro.cnn.workloads import load_workload
from repro.core.paraconv import ParaConv
from repro.pim.config import PimConfig
from repro.runtime.plan_cache import plan_to_dict

#: The widest PE configuration the evaluation sweeps (Section 4.1).
WIDEST_PES = 64

#: Median-of-N timing keeps the ratio stable on noisy CI hosts.
TIMING_REPEATS = 15

#: The committed speedup floor (ISSUE acceptance: >= 1.3x cold compile).
SPEEDUP_FLOOR = 1.3


@pytest.fixture(scope="module")
def latency_machine() -> PimConfig:
    """Widest array, single inference: the latency-serving regime."""
    return PimConfig(num_pes=WIDEST_PES, iterations=1)


@pytest.fixture(scope="module")
def workload():
    return load_workload("lenet5")


def _median_compile_seconds(make_compiler, graph) -> float:
    samples = []
    for _ in range(TIMING_REPEATS):
        compiler = make_compiler()
        started = time.perf_counter()
        compiler.run(graph)
        samples.append(time.perf_counter() - started)
    samples.sort()
    return samples[len(samples) // 2]


@pytest.mark.paper_artifact("compile-latency")
def test_pruning_preserves_the_plan(latency_machine, workload):
    """Pruned and exhaustive searches emit byte-identical plans."""
    pruned = ParaConv(latency_machine).run(workload)
    exhaustive = ParaConv(latency_machine, prune_widths=False).run(workload)
    assert plan_to_dict(pruned) == plan_to_dict(exhaustive)
    assert pruned.group_width == exhaustive.group_width
    assert pruned.total_time() == exhaustive.total_time()


@pytest.mark.paper_artifact("compile-latency")
def test_pruning_actually_skips_candidates(latency_machine, workload):
    """The lower bound fires on the widest-PE config — this is the
    search-space reduction the speedup comes from."""
    pruned = ParaConv(latency_machine).run(workload)
    exhaustive = ParaConv(latency_machine, prune_widths=False).run(workload)
    stats = pruned.compile_stats
    assert stats.pruning_enabled
    assert stats.num_pruned >= 1
    assert exhaustive.compile_stats.num_pruned == 0
    # Pruning partitions the candidate set: explored + pruned covers
    # exactly what the exhaustive search compiled.
    assert (
        stats.num_explored + stats.num_pruned
        == exhaustive.compile_stats.num_explored
    )


@pytest.mark.paper_artifact("compile-latency")
def test_cold_compile_speedup(latency_machine, workload, capsys):
    """Median cold-compile wall time, pruned vs exhaustive.

    Always measured and printed (with the per-pass ``--explain`` table);
    the >= 1.3x floor is asserted only under
    ``REPRO_ENFORCE_COMPILE_SPEEDUP=1``.
    """
    pruned_s = _median_compile_seconds(
        lambda: ParaConv(latency_machine), workload
    )
    exhaustive_s = _median_compile_seconds(
        lambda: ParaConv(latency_machine, prune_widths=False), workload
    )
    speedup = exhaustive_s / pruned_s

    result = ParaConv(latency_machine).run(workload)
    with capsys.disabled():
        print()
        print(
            f"cold compile, lenet5 @ {WIDEST_PES} PEs, N=1: "
            f"pruned {pruned_s * 1e3:.2f} ms, "
            f"exhaustive {exhaustive_s * 1e3:.2f} ms, "
            f"speedup {speedup:.2f}x"
        )
        print(result.compile_stats.explain())

    if os.environ.get("REPRO_ENFORCE_COMPILE_SPEEDUP"):
        assert speedup >= SPEEDUP_FLOOR, (
            f"pruned search only {speedup:.2f}x faster than exhaustive "
            f"(floor {SPEEDUP_FLOOR}x): pruned {pruned_s * 1e3:.2f} ms vs "
            f"exhaustive {exhaustive_s * 1e3:.2f} ms"
        )


@pytest.mark.paper_artifact("compile-latency")
def test_cold_compile_wall_time(benchmark, latency_machine, workload):
    """pytest-benchmark timing of the production (pruned) cold compile."""
    result = benchmark.pedantic(
        lambda: ParaConv(latency_machine).run(workload),
        rounds=5,
        iterations=1,
    )
    assert result.compile_stats.num_pruned >= 1
