"""Benchmark A7: big.LITTLE heterogeneous array (SPARTA's home turf).

Both schemes become speed-aware (HEFT dispatch for SPARTA, EFT compaction
for Para-CONV) on a half-fast/half-slow array at full-array mapping.
Asserted shape: Para-CONV still wins, and the margin narrows as the speed
gap widens (heterogeneity is where the baseline's placement intelligence
finally earns something).
"""

import pytest

from repro.eval.heterogeneity import render_heterogeneity, run_heterogeneity


@pytest.mark.paper_artifact("heterogeneity")
def test_big_little_study(benchmark, machine, capsys):
    rows = benchmark.pedantic(
        run_heterogeneity, kwargs={"base_config": machine, "pes": 16},
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(render_heterogeneity(rows))

    for row in rows:
        assert row.improvement_percent > 0
    by_speed = {}
    for row in rows:
        by_speed.setdefault(row.little_speed, []).append(
            row.improvement_percent
        )
    averages = {k: sum(v) / len(v) for k, v in by_speed.items()}
    assert averages[min(averages)] <= averages[max(averages)]
