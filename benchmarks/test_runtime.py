"""Benchmark RT: the serving runtime's two headline claims.

1. **Cached compilation is >= 10x faster than cold.** The plan cache turns
   the full pipeline (retiming analysis + DP allocation + width search)
   into a dictionary lookup; on the benchmark workloads the measured gap
   is typically 2-3 orders of magnitude, so the 10x bar has wide margin.
2. **Session results are bit-identical to the direct path.** The
   compile-once runtime is a pure amortization: makespan, traffic and
   energy must match ``ParaConv(...).run()`` + ``ScheduleExecutor`` run
   from scratch, number for number.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.cnn.workloads import load_workload
from repro.core.paraconv import ParaConv
from repro.runtime.plan_cache import PlanCache, plan_key_for
from repro.runtime.server import BatchingServer, QueueFullError
from repro.runtime.session import InferenceSession, direct_batch
from repro.sim.executor import ScheduleExecutor

WORKLOAD = "flower"  # a mid-size Table 1 benchmark


def _best_of(fn, repeats: int = 3) -> float:
    """Median wall time of ``fn`` over ``repeats`` runs."""
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


@pytest.mark.paper_artifact("runtime")
def test_warm_compile_at_least_10x_faster_than_cold(quick_machine, capsys):
    graph = load_workload(WORKLOAD)
    cache = PlanCache(capacity=8)
    key = plan_key_for(graph, quick_machine)

    def cold():
        cache.clear()
        cache.get_or_compile(
            key, lambda: ParaConv(quick_machine).run(graph)
        )

    def warm():
        plan = cache.get(key)
        assert plan is not None

    cold_seconds = _best_of(cold)
    # leave the cache populated, then measure lookups
    warm_seconds = _best_of(warm)
    speedup = cold_seconds / warm_seconds
    with capsys.disabled():
        print(
            f"\n[runtime] cold compile {cold_seconds * 1e3:.2f} ms, warm "
            f"lookup {warm_seconds * 1e6:.1f} us -> {speedup:.0f}x"
        )
    assert speedup >= 10.0, (
        f"plan cache must amortize compilation: only {speedup:.1f}x"
    )


@pytest.mark.paper_artifact("runtime")
@pytest.mark.parametrize("iterations", [1, 10, 25])
def test_session_bit_identical_to_direct_path(quick_machine, iterations):
    graph = load_workload(WORKLOAD)
    session = InferenceSession(graph, quick_machine, cache=PlanCache())
    batch = session.run(iterations)
    direct = direct_batch(graph, quick_machine, iterations)
    assert batch.analytic_makespan == direct.analytic_makespan
    assert batch.realized_makespan == direct.realized_makespan
    assert batch.stats == direct.stats
    assert batch.energy == direct.energy
    assert batch.cache_spills == direct.cache_spills
    assert batch.max_lateness == direct.max_lateness


@pytest.mark.paper_artifact("runtime")
def test_disk_hydrated_plan_identical_to_fresh_compile(quick_machine, tmp_path):
    """Compile -> persist -> hydrate in a fresh cache -> identical run."""
    graph = load_workload(WORKLOAD)
    warm = PlanCache(capacity=4, disk_dir=tmp_path)
    InferenceSession(graph, quick_machine, cache=warm).run(5)

    hydrated_cache = PlanCache(capacity=4, disk_dir=tmp_path)
    session = InferenceSession(graph, quick_machine, cache=hydrated_cache)
    batch = session.run(5)
    assert session.compilations == 0
    assert hydrated_cache.stats.disk_hits == 1

    reference = ParaConv(quick_machine).run(graph)
    trace = ScheduleExecutor(quick_machine, num_vaults=32).execute(
        reference, iterations=5
    )
    assert batch.realized_makespan == trace.realized_makespan
    assert batch.stats == trace.stats


@pytest.mark.paper_artifact("runtime")
def test_server_amortizes_and_survives_overload(quick_machine, capsys):
    """End-to-end: overload a bounded queue, drain, report percentiles."""
    server = BatchingServer(
        quick_machine, cache=PlanCache(capacity=8), max_queue=8, batch_window=4
    )
    rejected = 0
    for _ in range(24):
        try:
            server.submit(WORKLOAD)
        except QueueFullError:
            rejected += 1
            server.drain()
            server.submit(WORKLOAD)
    server.drain()
    results = server.results
    assert len(results) == 24
    assert rejected >= 1, "overload must trip backpressure at queue=8"
    # exactly one plan compilation for the whole stream
    assert server.cache.stats.misses == 1
    hist = server.metrics.histogram("sim_latency_units")
    assert hist.count == 24
    with capsys.disabled():
        print(
            f"\n[runtime] served 24 requests ({rejected} rejections), "
            f"sim latency p50={hist.p50:.0f} p95={hist.p95:.0f} "
            f"p99={hist.p99:.0f} units"
        )
