"""Benchmark T1: regenerate Table 1 (total execution time + IMP%).

Prints the same rows the paper reports -- SPARTA vs Para-CONV at 16/32/64
PEs for all twelve benchmarks -- and asserts the headline shape: Para-CONV
wins everywhere with an average reduction near the paper's 53.42%.
"""

import pytest

from repro.eval.table1 import (
    average_improvement,
    overall_average_improvement,
    render_table1,
    run_table1,
)
from repro.eval.paper_data import PAPER_TABLE1_AVERAGE_IMP


@pytest.mark.paper_artifact("table1")
def test_table1_full(benchmark, machine, capsys):
    rows = benchmark.pedantic(
        run_table1, args=(machine,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(render_table1(rows))
        overall = overall_average_improvement(rows)
        print(f"Overall average reduction: {overall:.2f}% (paper: 53.42%)")

    # Shape assertions: who wins, by roughly what factor.
    for row in rows:
        for cell in row.cells.values():
            assert cell.improvement_percent > 0, (
                f"{row.benchmark}@{cell.pes}: Para-CONV must win"
            )
    overall = overall_average_improvement(rows)
    assert 40.0 <= overall <= 70.0  # paper: 53.42
    for pes, paper_avg in PAPER_TABLE1_AVERAGE_IMP.items():
        measured = average_improvement(rows, pes)
        assert abs(measured - paper_avg) < 20.0, (
            f"average IMP at {pes} PEs drifted: {measured:.1f} vs {paper_avg}"
        )


@pytest.mark.paper_artifact("table1")
def test_table1_scaling_shape(benchmark, machine):
    """Both schemes accelerate with more PEs (the paper's sweep shape)."""
    rows = benchmark.pedantic(
        run_table1,
        kwargs={
            "base_config": machine,
            "benchmarks": ["character-1", "shortest-path", "protein"],
        },
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row.cells[64].paraconv_time < row.cells[16].paraconv_time
        assert row.cells[64].sparta_time < row.cells[16].sparta_time
        # roughly linear scaling: 4x PEs buys at least 2x
        assert row.cells[16].paraconv_time / row.cells[64].paraconv_time > 2.0
