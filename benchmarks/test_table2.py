"""Benchmark T2: regenerate Table 2 (maximum retiming value).

Shapes asserted: R_max grows with application scale, and the prologue
overhead stays negligible relative to the total execution time (both are
claims the paper makes about Table 2). The paper additionally reports
R_max decreasing with PE count; in this reproduction's microtiming the
prologue *time* decreases with PE count while R_max itself may grow --
EXPERIMENTS.md discusses the discrepancy.
"""

import pytest

from repro.eval.table2 import render_table2, run_table2


@pytest.mark.paper_artifact("table2")
def test_table2_full(benchmark, machine, capsys):
    rows = benchmark.pedantic(
        run_table2, args=(machine,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(render_table2(rows))

    by_name = {row.benchmark: row for row in rows}
    # R_max grows with application scale (cat .. protein ordering).
    assert by_name["protein"].average > by_name["cat"].average
    assert by_name["speech-2"].average > by_name["flower"].average
    # prologue overhead negligible (paper: "this overhead is negligible")
    for row in rows:
        for pes in (16, 32, 64):
            assert row.prologue_fraction(pes) < 0.25, (
                f"{row.benchmark}@{pes}: prologue dominates"
            )


@pytest.mark.paper_artifact("table2")
def test_prologue_time_decreases_with_pes(benchmark, machine):
    """Prologue wall-clock (R_max * p) shrinks as the array widens."""
    rows = benchmark.pedantic(
        run_table2,
        kwargs={"base_config": machine,
                "benchmarks": ["shortest-path", "speech-1", "protein"]},
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row.prologue_time[64] <= row.prologue_time[16]
